//! Run configuration for the PIM-TC pipeline.

use crate::error::TcError;
use crate::kernel::count::IntersectStrategy;
use crate::triplets::nr_triplets;
use pim_sim::{CostModel, PimConfig};
use serde::{Deserialize, Serialize};

/// Which execution engine runs the pipeline (see `pim_sim::backend`).
///
/// `Timed` is the full cycle-accounting simulator; `Functional` executes
/// the same kernels over the same banks but reports zero time, trace, and
/// energy — much faster, for correctness testing and exact baselines.
/// Both produce bit-identical counts and per-DPU samples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecBackend {
    /// Cycle-, DMA-, and energy-accounted simulation (`TimedBackend`).
    #[default]
    Timed,
    /// Functional-only execution (`FunctionalBackend`): no clocks.
    Functional,
}

impl ExecBackend {
    /// Reads the backend from the `PIM_TC_BACKEND` environment variable
    /// (`timed` / `functional`, case-insensitive), defaulting to `Timed`
    /// when unset or unrecognized. This is how CI runs the whole test
    /// suite against the functional engine without touching call sites.
    pub fn from_env() -> ExecBackend {
        match std::env::var("PIM_TC_BACKEND") {
            Ok(v) => v.parse().unwrap_or(ExecBackend::Timed),
            Err(_) => ExecBackend::Timed,
        }
    }
}

impl std::str::FromStr for ExecBackend {
    type Err = TcError;

    fn from_str(s: &str) -> Result<Self, TcError> {
        match s.to_ascii_lowercase().as_str() {
            "timed" => Ok(ExecBackend::Timed),
            "functional" => Ok(ExecBackend::Functional),
            other => Err(TcError::Config(format!(
                "unknown backend `{other}` (expected `timed` or `functional`)"
            ))),
        }
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecBackend::Timed => "timed",
            ExecBackend::Functional => "functional",
        })
    }
}

/// Misra-Gries parameters (§3.5): `k` is the summary capacity per host
/// thread, `t` the number of top-degree vertices remapped on the DPUs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MisraGriesConfig {
    /// Summary capacity `K` (per host thread).
    pub k: usize,
    /// Number of heavy hitters remapped on the PIM cores.
    pub t: usize,
}

/// Full configuration for [`crate::count_triangles`] / [`crate::TcSession`].
///
/// Build with [`TcConfig::builder`]; `build` validates cross-field
/// constraints (core budget, probability ranges, WRAM feasibility).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TcConfig {
    /// Number of vertex colors `C`; uses `C(C+2,3)` PIM cores.
    pub colors: u32,
    /// Master seed for coloring, sampling, and DPU RNG streams.
    pub seed: u64,
    /// Host-level uniform sampling keep-probability (§3.2); `1.0` disables
    /// it (exact mode).
    pub uniform_p: f64,
    /// Per-core sample capacity override in edges (§3.3 / §4.5
    /// experiments). `None` derives the maximum capacity from MRAM.
    pub sample_capacity: Option<u64>,
    /// Misra-Gries heavy-hitter remapping; `None` disables it.
    pub misra_gries: Option<MisraGriesConfig>,
    /// Local (per-vertex) counting: size of the node-id space to track.
    /// `None` disables it. Incompatible with `misra_gries` (remapped ids
    /// leave the tracked space).
    pub local_nodes: Option<u32>,
    /// Edges per staging round pushed to each core before the receive
    /// kernel runs.
    pub stage_edges: u64,
    /// Input edges routed per streaming chunk during `append` (§ bounded
    /// host memory): the host materializes at most `route_chunk_edges × C`
    /// routed edge keys at a time instead of the full C-fold duplicated
    /// batch set. Rounded up to the routing granule internally; results
    /// are identical for any value.
    pub route_chunk_edges: u64,
    /// Execution engine running the pipeline.
    pub backend: ExecBackend,
    /// How the count kernel intersects each edge's `u`-list with its
    /// `v` region: the cost-adaptive default, or one of the forced
    /// merge/gallop/bitmap ablation modes. Every mode produces the
    /// identical count (see [`crate::kernel::count::IntersectStrategy`]).
    pub intersect: IntersectStrategy,
    /// Forces the hardened (fault-tolerant) session path: checksummed
    /// staging transfers, verified pushes/gathers, bounded retries, and
    /// spare-core recovery. Implied whenever a fault plan or spare cores
    /// are configured (see [`TcConfig::effective_hardened`]).
    pub hardened: bool,
    /// Consecutive failed attempts tolerated per operation (transient
    /// transfer/launch faults, detected corruptions) before the run aborts
    /// with [`TcError::Faulted`].
    pub max_retries: u32,
    /// Spare PIM cores allocated beyond the `C(C+2,3)` partitions. When a
    /// partition's core dies permanently, its sample is reconstructed from
    /// the survivors' C-fold redundancy onto a spare and the run
    /// continues. Without [`TcConfig::journal`], requires `colors >= 2`
    /// and no Misra-Gries remapping.
    pub spare_dpus: u32,
    /// Keeps replayable per-partition RNG journals during hardened
    /// sessions: every routed key and remap pass is recorded against the
    /// partition's `(seed, granule, counter)` RNG coordinates, so a lost
    /// partition's sample — including overflowed reservoirs and
    /// Misra-Gries remapped samples — is re-derived exactly by replaying
    /// the journal, with no surviving replicas needed. Lifts the
    /// `colors >= 2` / no-Misra-Gries restrictions on spare-core
    /// recovery.
    pub journal: bool,
    /// Proactive scrub cadence for hardened sessions: every
    /// `scrub_interval` streamed chunks, the session seal-verifies every
    /// live partition's resident sample and repairs (journal replay) or
    /// fails over any partition whose bank is corrupted or dead —
    /// surfacing latent faults between batches instead of on next touch.
    /// `0` disables scrubbing.
    pub scrub_interval: u64,
    /// Number of independent PIM ranks the triplet space is sharded
    /// across. Each rank is a full [`pim_sim::PimConfig`]-shaped machine
    /// (its own `pim.total_dpus` core budget, fault plan, and spares), so
    /// capacity scales by adding ranks instead of growing one machine:
    /// partitions are split into contiguous per-rank shards and results
    /// are merged host-side. `1` (the default) runs today's single-rank
    /// path bit-identically. Values above the partition count are clamped
    /// down (see [`TcConfig::effective_ranks`]) so small color counts
    /// never strand empty ranks.
    pub ranks: u32,
    /// Simulated hardware shape.
    pub pim: PimConfig,
    /// Simulated timing parameters.
    pub cost: CostModel,
}

impl TcConfig {
    /// Starts a builder with paper-like defaults.
    pub fn builder() -> TcConfigBuilder {
        TcConfigBuilder::default()
    }

    /// PIM cores this configuration will allocate.
    pub fn nr_dpus(&self) -> usize {
        nr_triplets(self.colors)
    }

    /// Ranks actually used: `ranks` clamped into `[1, nr_dpus()]` so a
    /// configuration with more ranks than partitions collapses to one
    /// rank per partition instead of allocating empty shards.
    pub fn effective_ranks(&self) -> u32 {
        (self.ranks.max(1) as usize).min(self.nr_dpus().max(1)) as u32
    }

    /// Whether the session runs on the hardened (fault-tolerant) path:
    /// explicitly requested, or implied by an injected fault plan or by
    /// spare cores being provisioned.
    pub fn effective_hardened(&self) -> bool {
        self.hardened || self.pim.fault.is_some() || self.spare_dpus > 0
    }

    /// Validates cross-field constraints.
    pub fn validate(&self) -> Result<(), TcError> {
        if self.colors < 1 {
            return Err(TcError::Config("colors must be >= 1".into()));
        }
        if self.pim.total_dpus == 0 {
            return Err(TcError::Config(
                "the PIM system has zero cores (pim.total_dpus = 0); \
                 nothing can run — configure at least one DPU"
                    .into(),
            ));
        }
        if self.ranks == 0 {
            return Err(TcError::Config("ranks must be >= 1".into()));
        }
        let partitions = self.nr_dpus();
        let ranks = self.effective_ranks() as usize;
        // The largest contiguous shard holds ceil(P / R) partitions; every
        // rank additionally provisions the full spare pool.
        let per_rank = partitions.div_ceil(ranks) + self.spare_dpus as usize;
        if per_rank > self.pim.total_dpus {
            let spare_budget = self.pim.total_dpus.saturating_sub(self.spare_dpus as usize);
            let hint = if spare_budget > 0 {
                let min_ranks = partitions.div_ceil(spare_budget);
                format!("; the smallest rank count that fits is --ranks {min_ranks}")
            } else {
                "; no rank count fits — the spares alone exhaust a rank's cores".into()
            };
            return Err(TcError::Config(format!(
                "{} colors need {} partitions + {} spares per rank: at \
                 --ranks {} the largest rank hosts {} PIM cores but each \
                 rank has {} (cluster-wide budget {} ranks x {} = {} \
                 cores){}",
                self.colors,
                partitions,
                self.spare_dpus,
                ranks,
                per_rank,
                self.pim.total_dpus,
                ranks,
                self.pim.total_dpus,
                ranks * self.pim.total_dpus,
                hint
            )));
        }
        if !(self.uniform_p > 0.0 && self.uniform_p <= 1.0) {
            return Err(TcError::Config(format!(
                "uniform_p must be in (0, 1], got {}",
                self.uniform_p
            )));
        }
        if self.stage_edges == 0 {
            return Err(TcError::Config("stage_edges must be positive".into()));
        }
        if self.route_chunk_edges == 0 {
            return Err(TcError::Config("route_chunk_edges must be positive".into()));
        }
        if let Some(mg) = &self.misra_gries {
            if mg.k == 0 {
                return Err(TcError::Config("misra_gries.k must be positive".into()));
            }
            // The remap table must fit in a tasklet's WRAM share so the
            // remap kernel can hold it resident (8 bytes per entry, half
            // the share left for edge buffers).
            let max_t = self.pim.wram_per_tasklet() / 16;
            if mg.t > max_t {
                return Err(TcError::Config(format!(
                    "misra_gries.t = {} exceeds the WRAM-resident limit {max_t}",
                    mg.t
                )));
            }
        }
        if let Some(m) = self.sample_capacity {
            if m < 3 {
                return Err(TcError::Config(
                    "sample_capacity below 3 cannot hold a triangle".into(),
                ));
            }
        }
        if self.local_nodes.is_some() && self.misra_gries.is_some() {
            return Err(TcError::Config(
                "local counting and Misra-Gries remapping are incompatible \
                 (remapped ids leave the tracked node space)"
                    .into(),
            ));
        }
        if self.effective_hardened() && self.stage_edges < 2 {
            return Err(TcError::Config(
                "hardened sessions need stage_edges >= 2 (one staging slot \
                 is reserved for the batch checksum)"
                    .into(),
            ));
        }
        if self.spare_dpus > 0 && !self.journal {
            if self.colors < 2 {
                return Err(TcError::Config(
                    "spare-core recovery needs colors >= 2: with C = 1 \
                     there is a single partition and no redundant replica \
                     to reconstruct a lost sample from"
                        .into(),
                ));
            }
            if self.misra_gries.is_some() {
                return Err(TcError::Config(
                    "spare-core recovery and Misra-Gries remapping are \
                     incompatible: remapped vertex ids hash to different \
                     colors, so a lost partition cannot be re-derived from \
                     the survivors' samples"
                        .into(),
                ));
            }
        }
        if self.scrub_interval > 0 && !self.journal {
            return Err(TcError::Config(
                "scrubbing compares resident banks against their replayed \
                 journals; scrub_interval > 0 requires journal"
                    .into(),
            ));
        }
        if let Some(plan) = &self.pim.fault {
            // A kill naming a core the session never allocates would
            // silently never fire — reject it so chaos specs stay honest.
            let allocated = partitions + ranks * self.spare_dpus as usize;
            for kill in plan.kills.iter().flatten() {
                if kill.dpu >= allocated {
                    return Err(TcError::Config(format!(
                        "fault plan kills DPU {} but this session allocates \
                         only {} cores ({} partitions + {} ranks x {} \
                         spares; cluster-wide budget {} ranks x {} = {} \
                         cores) — the kill would silently never fire",
                        kill.dpu,
                        allocated,
                        partitions,
                        ranks,
                        self.spare_dpus,
                        ranks,
                        self.pim.total_dpus,
                        ranks * self.pim.total_dpus,
                    )));
                }
            }
            for kill in plan.rank_kills.iter().flatten() {
                if kill.rank >= ranks {
                    return Err(TcError::Config(format!(
                        "fault plan kills rank {} but this session runs on \
                         {} rank(s) (--ranks / PIM_TC_RANKS) — the outage \
                         would silently never fire",
                        kill.rank, ranks,
                    )));
                }
            }
            for flaky in plan.rank_flaky.iter().flatten() {
                if flaky.rank >= ranks {
                    return Err(TcError::Config(format!(
                        "fault plan marks rank {} flaky but this session \
                         runs on {} rank(s) (--ranks / PIM_TC_RANKS)",
                        flaky.rank, ranks,
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Reads the default rank count from the `PIM_TC_RANKS` environment
/// variable, falling back to 1 when unset, unparsable, or zero. Mirrors
/// [`ExecBackend::from_env`]: CI runs the whole suite sharded across four
/// ranks without touching call sites.
fn ranks_from_env() -> u32 {
    match std::env::var("PIM_TC_RANKS") {
        Ok(v) => v.trim().parse().ok().filter(|&r| r >= 1).unwrap_or(1),
        Err(_) => 1,
    }
}

/// Builder for [`TcConfig`].
#[derive(Clone, Debug)]
pub struct TcConfigBuilder {
    config: TcConfig,
}

impl Default for TcConfigBuilder {
    fn default() -> Self {
        TcConfigBuilder {
            config: TcConfig {
                colors: 4,
                seed: 0x9E3779B97F4A7C15,
                uniform_p: 1.0,
                sample_capacity: None,
                misra_gries: None,
                local_nodes: None,
                stage_edges: 2048,
                route_chunk_edges: 256 * 1024,
                backend: ExecBackend::from_env(),
                intersect: IntersectStrategy::Adaptive,
                hardened: false,
                max_retries: 8,
                spare_dpus: 0,
                journal: false,
                scrub_interval: 0,
                ranks: ranks_from_env(),
                pim: PimConfig::default(),
                cost: CostModel::default(),
            },
        }
    }
}

impl TcConfigBuilder {
    /// Sets the color count `C` (PIM cores = `C(C+2,3)`).
    pub fn colors(mut self, colors: u32) -> Self {
        self.config.colors = colors;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables host-level uniform sampling with keep-probability `p`.
    pub fn uniform_p(mut self, p: f64) -> Self {
        self.config.uniform_p = p;
        self
    }

    /// Caps each core's sample at `m` edges (reservoir experiments).
    pub fn sample_capacity(mut self, m: u64) -> Self {
        self.config.sample_capacity = Some(m);
        self
    }

    /// Enables Misra-Gries remapping with capacity `k` and top-`t`.
    pub fn misra_gries(mut self, k: usize, t: usize) -> Self {
        self.config.misra_gries = Some(MisraGriesConfig { k, t });
        self
    }

    /// Enables local (per-vertex) counting over node ids `[0, nodes)`.
    pub fn local_counting(mut self, nodes: u32) -> Self {
        self.config.local_nodes = Some(nodes);
        self
    }

    /// Sets the staging batch size in edges.
    pub fn stage_edges(mut self, edges: u64) -> Self {
        self.config.stage_edges = edges;
        self
    }

    /// Sets the streaming route-chunk size in input edges (bounds peak
    /// host memory during `append`; does not change results).
    pub fn route_chunk_edges(mut self, edges: u64) -> Self {
        self.config.route_chunk_edges = edges;
        self
    }

    /// Selects the execution engine (overrides the `PIM_TC_BACKEND`
    /// environment default).
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Selects the count kernel's intersection strategy (default:
    /// cost-adaptive; forced modes are ablation baselines).
    pub fn intersect(mut self, strategy: IntersectStrategy) -> Self {
        self.config.intersect = strategy;
        self
    }

    /// Forces the hardened (fault-tolerant) session path even without a
    /// fault plan or spares — useful for measuring its overhead.
    pub fn hardened(mut self, hardened: bool) -> Self {
        self.config.hardened = hardened;
        self
    }

    /// Sets the per-operation retry budget for transient faults.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.max_retries = retries;
        self
    }

    /// Provisions `n` spare PIM cores for permanent-death recovery.
    pub fn spare_dpus(mut self, n: u32) -> Self {
        self.config.spare_dpus = n;
        self
    }

    /// Enables replayable per-partition RNG journals (see
    /// [`TcConfig::journal`]): lost partitions are re-derived by replay
    /// instead of survivor reconstruction, which also makes overflowed
    /// reservoirs and Misra-Gries sessions recoverable.
    pub fn journal(mut self, on: bool) -> Self {
        self.config.journal = on;
        self
    }

    /// Sets the number of PIM ranks the triplet space is sharded across
    /// (overrides the `PIM_TC_RANKS` environment default; see
    /// [`TcConfig::ranks`]).
    pub fn ranks(mut self, ranks: u32) -> Self {
        self.config.ranks = ranks;
        self
    }

    /// Scrubs every live partition's resident sample every `chunks`
    /// streamed chunks (see [`TcConfig::scrub_interval`]); `0` disables.
    pub fn scrub_interval(mut self, chunks: u64) -> Self {
        self.config.scrub_interval = chunks;
        self
    }

    /// Attaches a seeded fault-injection plan to the simulated hardware
    /// (implies the hardened pipeline; see [`TcConfig::effective_hardened`]).
    pub fn fault_plan(mut self, plan: Option<pim_sim::FaultPlan>) -> Self {
        self.config.pim.fault = plan;
        self
    }

    /// Overrides the simulated hardware shape.
    pub fn pim(mut self, pim: PimConfig) -> Self {
        self.config.pim = pim;
        self
    }

    /// Overrides the timing model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.config.cost = cost;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<TcConfig, TcError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let c = TcConfig::builder().build().unwrap();
        assert_eq!(c.colors, 4);
        assert_eq!(c.nr_dpus(), 20);
        assert!(c.misra_gries.is_none());
    }

    #[test]
    fn paper_configuration_fits_the_machine() {
        let c = TcConfig::builder().colors(23).build().unwrap();
        assert_eq!(c.nr_dpus(), 2300);
    }

    #[test]
    fn too_many_colors_rejected() {
        // 24 colors → 2600 > 2560 DPUs on a single rank.
        let err = TcConfig::builder().colors(24).ranks(1).build().unwrap_err();
        assert!(matches!(err, TcError::Config(_)));
    }

    #[test]
    fn insufficient_cores_reports_cluster_budget_and_min_ranks() {
        // 24 colors → 2600 partitions: one 2560-core rank cannot host
        // them, and the smallest rank count that fits is 2.
        let err = TcConfig::builder().colors(24).ranks(1).build().unwrap_err();
        let TcError::Config(msg) = err else {
            panic!("expected Config error")
        };
        assert!(
            msg.contains("cluster-wide budget 1 ranks x 2560"),
            "message: {msg}"
        );
        assert!(msg.contains("--ranks 2"), "message: {msg}");
        // Following the hint makes the same configuration valid.
        assert!(TcConfig::builder().colors(24).ranks(2).build().is_ok());
    }

    #[test]
    fn out_of_range_kill_rejected_with_cluster_budget() {
        // colors=3 → 10 partitions; with 2 spares on 1 rank the global id
        // space is 0..12, so kill=12 can never fire.
        let plan = pim_sim::FaultPlan::parse("seed=3,kill=12@5").unwrap();
        let err = TcConfig::builder()
            .colors(3)
            .ranks(1)
            .spare_dpus(2)
            .fault_plan(Some(plan))
            .build()
            .unwrap_err();
        let TcError::Config(msg) = err else {
            panic!("expected Config error")
        };
        assert!(msg.contains("kills DPU 12"), "message: {msg}");
        assert!(msg.contains("only 12 cores"), "message: {msg}");
        assert!(
            msg.contains("cluster-wide budget 1 ranks x 2560"),
            "message: {msg}"
        );
        assert!(msg.contains("silently never fire"), "message: {msg}");
        // The same kill becomes valid once more ranks provision spares
        // (ids 0..=17 at 4 ranks x 2 spares).
        assert!(TcConfig::builder()
            .colors(3)
            .ranks(4)
            .spare_dpus(2)
            .fault_plan(Some(plan))
            .build()
            .is_ok());
    }

    #[test]
    fn out_of_range_rank_faults_rejected() {
        let kill = pim_sim::FaultPlan::parse("seed=3,rank=4@count").unwrap();
        let err = TcConfig::builder()
            .colors(3)
            .ranks(4)
            .spare_dpus(2)
            .fault_plan(Some(kill))
            .build()
            .unwrap_err();
        let TcError::Config(msg) = err else {
            panic!("expected Config error")
        };
        assert!(msg.contains("kills rank 4"), "message: {msg}");
        assert!(msg.contains("4 rank(s)"), "message: {msg}");
        let flaky = pim_sim::FaultPlan::parse("seed=3,rank_flaky=2:1000").unwrap();
        assert!(TcConfig::builder()
            .colors(3)
            .ranks(2)
            .spare_dpus(2)
            .fault_plan(Some(flaky))
            .build()
            .is_err());
        assert!(TcConfig::builder()
            .colors(3)
            .ranks(4)
            .spare_dpus(2)
            .fault_plan(Some(flaky))
            .build()
            .is_ok());
    }

    #[test]
    fn spares_that_exhaust_a_rank_admit_no_rank_count() {
        let err = TcConfig::builder()
            .colors(23)
            .ranks(1)
            .spare_dpus(2560)
            .journal(true)
            .build()
            .unwrap_err();
        let TcError::Config(msg) = err else {
            panic!("expected Config error")
        };
        assert!(msg.contains("no rank count fits"), "message: {msg}");
    }

    #[test]
    fn zero_ranks_rejected_and_excess_ranks_clamp() {
        assert!(TcConfig::builder().ranks(0).build().is_err());
        // 1 color → 1 partition: ranks clamp down to the partition count
        // so tiny configurations never strand empty shards.
        let c = TcConfig::builder().colors(1).ranks(8).build().unwrap();
        assert_eq!(c.ranks, 8);
        assert_eq!(c.effective_ranks(), 1);
        let d = TcConfig::builder().colors(4).ranks(3).build().unwrap();
        assert_eq!(d.effective_ranks(), 3);
    }

    #[test]
    fn bad_probability_rejected() {
        assert!(TcConfig::builder().uniform_p(0.0).build().is_err());
        assert!(TcConfig::builder().uniform_p(1.5).build().is_err());
        assert!(TcConfig::builder().uniform_p(0.01).build().is_ok());
    }

    #[test]
    fn oversized_remap_table_rejected() {
        // Default WRAM share is 4096 B → limit 256 entries.
        assert!(TcConfig::builder().misra_gries(1024, 256).build().is_ok());
        assert!(TcConfig::builder().misra_gries(1024, 257).build().is_err());
    }

    #[test]
    fn local_counting_conflicts_with_misra_gries() {
        assert!(TcConfig::builder()
            .misra_gries(64, 8)
            .local_counting(100)
            .build()
            .is_err());
        assert!(TcConfig::builder().local_counting(100).build().is_ok());
    }

    #[test]
    fn backend_parses_both_engines() {
        assert_eq!("timed".parse::<ExecBackend>().unwrap(), ExecBackend::Timed);
        assert_eq!(
            "Functional".parse::<ExecBackend>().unwrap(),
            ExecBackend::Functional
        );
        assert!("gpu".parse::<ExecBackend>().is_err());
        assert_eq!(ExecBackend::Functional.to_string(), "functional");
    }

    #[test]
    fn zero_route_chunk_rejected() {
        assert!(TcConfig::builder().route_chunk_edges(0).build().is_err());
        assert!(TcConfig::builder().route_chunk_edges(1).build().is_ok());
    }

    #[test]
    fn tiny_sample_capacity_rejected() {
        assert!(TcConfig::builder().sample_capacity(2).build().is_err());
        assert!(TcConfig::builder().sample_capacity(3).build().is_ok());
    }

    #[test]
    fn zero_dpu_system_rejected_with_actionable_message() {
        let err = TcConfig::builder()
            .pim(PimConfig {
                total_dpus: 0,
                ..PimConfig::default()
            })
            .build()
            .unwrap_err();
        let TcError::Config(msg) = err else {
            panic!("expected Config error")
        };
        assert!(msg.contains("zero cores"), "message: {msg}");
    }

    #[test]
    fn spares_count_against_the_core_budget() {
        // C = 23 needs all 2300 partitions; 2560 total leaves 260 spares
        // on a single rank.
        assert!(TcConfig::builder()
            .colors(23)
            .ranks(1)
            .spare_dpus(260)
            .build()
            .is_ok());
        assert!(TcConfig::builder()
            .colors(23)
            .ranks(1)
            .spare_dpus(261)
            .build()
            .is_err());
        // A second rank halves the largest shard, so the same spare count
        // fits again: capacity scales by adding ranks.
        assert!(TcConfig::builder()
            .colors(23)
            .ranks(2)
            .spare_dpus(261)
            .build()
            .is_ok());
    }

    #[test]
    fn spares_need_redundancy_and_no_remapping() {
        assert!(TcConfig::builder().colors(1).spare_dpus(1).build().is_err());
        assert!(TcConfig::builder().colors(2).spare_dpus(1).build().is_ok());
        assert!(TcConfig::builder()
            .colors(2)
            .spare_dpus(1)
            .misra_gries(64, 8)
            .build()
            .is_err());
    }

    #[test]
    fn journal_lifts_the_spare_recovery_restrictions() {
        // Journaled sessions can recover with a single color (no replica
        // needed) and with Misra-Gries remapping active.
        assert!(TcConfig::builder()
            .colors(1)
            .spare_dpus(1)
            .journal(true)
            .build()
            .is_ok());
        assert!(TcConfig::builder()
            .colors(2)
            .spare_dpus(1)
            .misra_gries(64, 8)
            .journal(true)
            .build()
            .is_ok());
        // Journal-off keeps today's refusals.
        assert!(TcConfig::builder().colors(1).spare_dpus(1).build().is_err());
    }

    #[test]
    fn scrub_interval_builds_and_defaults_off() {
        let c = TcConfig::builder().build().unwrap();
        assert_eq!(c.scrub_interval, 0);
        assert!(!c.journal);
        let s = TcConfig::builder()
            .scrub_interval(4)
            .journal(true)
            .hardened(true)
            .build()
            .unwrap();
        assert_eq!(s.scrub_interval, 4);
        // Scrubbing replays journals as ground truth: a cadence without
        // journaling is a configuration error, not a silent no-op.
        assert!(TcConfig::builder()
            .scrub_interval(4)
            .hardened(true)
            .build()
            .is_err());
    }

    #[test]
    fn hardened_mode_is_implied_by_faults_or_spares() {
        let plain = TcConfig::builder().build().unwrap();
        assert!(!plain.effective_hardened());
        assert!(TcConfig::builder()
            .hardened(true)
            .build()
            .unwrap()
            .effective_hardened());
        assert!(TcConfig::builder()
            .spare_dpus(1)
            .build()
            .unwrap()
            .effective_hardened());
        let faulty = TcConfig::builder()
            .pim(PimConfig {
                fault: Some(pim_sim::FaultPlan::parse("seed=1").unwrap()),
                ..PimConfig::default()
            })
            .build()
            .unwrap();
        assert!(faulty.effective_hardened());
    }

    #[test]
    fn hardened_mode_needs_a_checksum_slot() {
        assert!(TcConfig::builder()
            .hardened(true)
            .stage_edges(1)
            .build()
            .is_err());
        assert!(TcConfig::builder()
            .hardened(true)
            .stage_edges(2)
            .build()
            .is_ok());
        // Plain sessions keep the old floor.
        assert!(TcConfig::builder().stage_edges(1).build().is_ok());
    }
}
