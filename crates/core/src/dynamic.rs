//! Dynamic-graph sessions (§4.6).
//!
//! COO's O(1) append is the reason the paper's PIM implementation wins on
//! dynamic workloads: new edges go straight into the per-core samples (no
//! CSR rebuild), and counting restarts on the updated samples. A
//! [`TcSession`] owns the allocated PIM system across updates:
//!
//! ```text
//! let mut s = TcSession::start(&config)?;
//! s.append(batch_1)?;  let r1 = s.count()?;   // count after update 1
//! s.append(batch_2)?;  let r2 = s.count()?;   // count after update 2
//! let final = s.finish()?;                     // last count + release
//! ```
//!
//! [`crate::count_triangles`] is simply a one-append session.

use crate::checkpoint::{BankSnapshot, SessionCheckpoint, SummarySnapshot, CHECKPOINT_VERSION};
use crate::config::TcConfig;
use crate::correction;
use crate::error::TcError;
use crate::host::{
    route_edges_into, RouteParams, RouteScratch, RoutedBatches, ROUTE_GRANULE_EDGES,
};
use crate::kernel::layout::{Header, MramLayout, HDR_REMAP_LEN, HDR_STAGE_LEN};
use crate::kernel::{checksum, count, edge_unkey, index, local, receive, remap, rng, sort};
use crate::result::{DpuReport, TcResult};
use crate::triplets::TripletAssignment;
use pim_graph::Edge;
use pim_metrics::{ChunkObs, MetricsHub};
use pim_sim::system::{decode_slice, encode_slice};
use pim_sim::{
    ClusterReport, ClusterSpec, HostWrite, Phase, PimBackend, RankCluster, SimError, TimedBackend,
};
use pim_stream::{ColoringHash, MisraGries, PartitionJournal};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Modeled host seconds charged for the first retry of a failed
/// operation; each further consecutive failure doubles it (capped at
/// `2^6` ×), modeling capped exponential backoff.
const RETRY_BACKOFF_BASE: f64 = 1e-4;

/// A live PIM-TC computation: allocated cores, resident edge samples, and
/// the accumulated sampling state.
///
/// The session is generic over the execution engine: `B` is any
/// [`PimBackend`], defaulting to the cycle-accounting [`TimedBackend`].
/// [`TcSession::start`] builds a timed session;
/// [`TcSession::start_with`] picks the engine through the type parameter
/// (e.g. `TcSession::<FunctionalBackend>::start_with(&config)`). The
/// resident samples and every count are bit-identical across engines.
pub struct TcSession<B: PimBackend = TimedBackend> {
    config: TcConfig,
    assignment: TripletAssignment,
    coloring: ColoringHash,
    layout: MramLayout,
    sys: B,
    summary: Option<MisraGries>,
    /// Stable heavy-hitter assignment: old id → new id. Once assigned, an
    /// id never changes, so re-remapping resident (already rewritten)
    /// samples stays consistent across updates.
    remap_table: Vec<(u32, u32)>,
    remap_assigned: HashSet<u32>,
    next_new_id: u32,
    remap_dirty: bool,
    offered: u64,
    kept: u64,
    /// Routing granules consumed so far, across all appends: the sampling
    /// streams continue where the previous batch left off.
    route_granules: u64,
    /// High-water mark of routed edge-key bytes materialized on the host
    /// at once — the quantity the streaming `append` bounds.
    peak_routed_bytes: u64,
    /// Whether this session runs the hardened pipeline (checksummed
    /// transfers, bounded retry, spare-core failover). Resolved once at
    /// start from [`TcConfig::effective_hardened`].
    hardened: bool,
    /// `partition → physical DPU` map. Starts as the identity; failover
    /// repoints a lost partition at a spare core. Plain sessions never
    /// consult it.
    partition_home: Vec<usize>,
    /// Rank currently homing each partition. Plain (non-cluster)
    /// sessions put every partition in rank 0; cluster sessions start
    /// from [`pim_sim::ClusterSpec::rank_of_partition`]. Failover
    /// prefers the dead partition's own rank's spares, but a whole-rank
    /// outage takes its spare block down too, so recovery may re-home a
    /// partition onto another rank ([`Self::take_spare`] updates this).
    partition_rank: Vec<usize>,
    /// Physical ids of allocated-but-idle spare cores, one pool per rank,
    /// consumed from the back on failover. Single-rank sessions hold one
    /// pool — the exact pop order of the old global pool.
    spare_pools: Vec<Vec<usize>>,
    /// Edges routed to each partition so far — the completeness oracle
    /// for reconstruction: survivors must yield exactly this many edges
    /// for a lost partition, or recovery fails loudly.
    routed_per_partition: Vec<u64>,
    /// Live metrics hub shared with the backend, when the session was
    /// started metered. The session emits orchestration-level events
    /// (chunks, reservoir occupancy, failovers) on it; the backend emits
    /// transfers/launches/faults.
    metrics: Option<Arc<MetricsHub>>,
    /// Streamed chunks ingested so far (the `chunk` event index).
    chunks_done: u64,
    /// Replayable per-partition RNG journals ([`TcConfig::journal`]):
    /// every routed key in arrival order plus remap/sort marks, keyed by
    /// the partition's `(seed, granule, counter)` RNG coordinates. A lost
    /// partition's bank — sample, stream position, and advanced RNG
    /// state — is re-derived exactly by replaying its journal through the
    /// receive kernel's decision arithmetic; no survivors needed.
    journals: Option<Vec<PartitionJournal>>,
    /// Effective scrub cadence in streamed chunks (0 = off), resolved
    /// from [`TcConfig::scrub_interval`] with the fault plan's `scrub=`
    /// hook as fallback.
    scrub_every: u64,
    /// Reusable routing staging buffers: hoisted out of the per-chunk
    /// path so steady-state `append` performs no routing allocation
    /// (buffers are cleared at retained capacity between chunks).
    route_scratch: RouteScratch,
    /// Reusable routed-batch output, paired with `route_scratch`.
    routed: RoutedBatches,
}

/// Outcome of one proactive scrub sweep (see [`TcSession::scrub`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Partitions inspected.
    pub partitions: u64,
    /// Banks whose resident sample failed the seal digest and were
    /// reinstalled from the journal.
    pub repaired: u64,
    /// Dead cores detected (and failed over) by the sweep instead of by
    /// the next batch to touch them.
    pub failed_over: u64,
}

/// The per-partition bank state a journal replay re-derives.
struct ReplayedBank {
    /// Resident sample keys, slot for slot.
    sample: Vec<u64>,
    /// Stream position `t` (edges seen), which also carries the
    /// overflow flag (`seen > cap`).
    seen: u64,
    /// The xorshift64* state after every journaled reservoir decision.
    rng: u64,
    /// The packed remap table prefix in force at the last mark.
    remap: Vec<u64>,
    /// Remap marks applied during the replay.
    marks_applied: u64,
}

impl TcSession<TimedBackend> {
    /// Allocates the timed PIM system and initializes every core's bank
    /// (header, RNG stream, empty sample). Charged to the Setup phase.
    pub fn start(config: &TcConfig) -> Result<TcSession, TcError> {
        Self::start_with(config)
    }
}

impl<B: PimBackend> TcSession<RankCluster<B>> {
    /// Allocates a multi-rank cluster session: the triplet space is split
    /// into contiguous per-rank shards over `config.effective_ranks()`
    /// independent `B` machines (each with its own derived fault plan and
    /// its own spare pool), and the session drives them through the
    /// global-id [`RankCluster`] facade. At `ranks = 1` the cluster is a
    /// verbatim pass-through, so this path is bit-identical to
    /// [`TcSession::start_with`] on `B` directly.
    pub fn start_cluster(config: &TcConfig) -> Result<TcSession<RankCluster<B>>, TcError> {
        Self::start_cluster_metered(config, None)
    }

    /// Like [`TcSession::start_cluster`], with a live metrics hub
    /// attached before any bank is touched. Each rank emits through a
    /// rank-scoped view of the hub (`rank` label / event field); at
    /// `ranks = 1` the hub is forwarded unscoped, keeping the event
    /// stream byte-identical to a plain metered session.
    pub fn start_cluster_metered(
        config: &TcConfig,
        metrics: Option<Arc<MetricsHub>>,
    ) -> Result<TcSession<RankCluster<B>>, TcError> {
        config.validate()?;
        let partitions = config.nr_dpus();
        let spares = if config.effective_hardened() {
            config.spare_dpus as usize
        } else {
            0
        };
        let spec = ClusterSpec::new(partitions, spares, config.effective_ranks() as usize);
        let partition_rank = (0..partitions).map(|p| spec.rank_of_partition(p)).collect();
        let spare_pools = (0..spec.ranks)
            .map(|r| spec.spare_range(r).collect())
            .collect();
        Self::assemble(
            config,
            metrics,
            |cfg| RankCluster::allocate_cluster(spec, cfg.pim, cfg.cost).map_err(TcError::Sim),
            partition_rank,
            spare_pools,
        )
    }

    /// Rebuilds a live cluster session from a verified
    /// [`SessionCheckpoint`]: a fresh cluster is allocated from the
    /// *checkpointed* configuration, then every partition's bank, the
    /// Misra-Gries summary, the sampling-stream cursors, and the RNG
    /// journals are reinstated exactly as captured. Appending the
    /// remainder of the edge stream to the restored session converges to
    /// the same final count as the uninterrupted run (pinned by the
    /// `session_fuzz` resume property).
    pub fn restore_cluster(
        snap: &SessionCheckpoint,
        metrics: Option<Arc<MetricsHub>>,
    ) -> Result<TcSession<RankCluster<B>>, TcError> {
        let mut session = Self::start_cluster_metered(&snap.config, metrics)?;
        session.install_snapshot(snap)?;
        Ok(session)
    }

    /// Ranks in the cluster.
    pub fn nr_ranks(&self) -> usize {
        self.sys.nr_ranks()
    }

    /// Per-rank utilization reports plus the cluster-wide merge (resource
    /// totals summed, phase times as the elementwise maximum over ranks).
    pub fn cluster_report(&self) -> ClusterReport {
        ClusterReport::capture(&self.sys)
    }

    /// Each rank's recorded trace in rank order (clones; empty unless
    /// tracing was enabled). Feed to [`pim_sim::to_chrome_trace_cluster`]
    /// to export an R>1 run with per-rank process groups.
    pub fn rank_traces(&self) -> Vec<pim_sim::Trace> {
        self.sys.rank_traces().into_iter().cloned().collect()
    }
}

impl<B: PimBackend> TcSession<B> {
    /// Like [`TcSession::start`], on the execution engine chosen by the
    /// type parameter.
    pub fn start_with(config: &TcConfig) -> Result<TcSession<B>, TcError> {
        Self::start_metered(config, None)
    }

    /// Like [`TcSession::start_with`], with a live metrics hub attached
    /// before any bank is touched, so the event stream covers the entire
    /// session — allocation, initialization, every append and count. Both
    /// the backend (transfers, launches, faults) and the session
    /// (chunks, reservoir occupancy, failovers) emit on the hub.
    pub fn start_metered(
        config: &TcConfig,
        metrics: Option<Arc<MetricsHub>>,
    ) -> Result<TcSession<B>, TcError> {
        let nr_partitions = config.nr_dpus();
        let spares = if config.effective_hardened() {
            config.spare_dpus as usize
        } else {
            0
        };
        Self::assemble(
            config,
            metrics,
            |cfg| B::allocate(nr_partitions + spares, cfg.pim, cfg.cost).map_err(TcError::Sim),
            vec![0; nr_partitions],
            vec![(nr_partitions..nr_partitions + spares).collect()],
        )
    }

    /// Shared tail of session construction: everything after the backend
    /// exists — bank initialization, journals, scrub cadence — is
    /// identical for plain and cluster sessions; only the allocation
    /// (`alloc`) and the rank structure (`partition_rank`, `spare_pools`)
    /// differ.
    fn assemble(
        config: &TcConfig,
        metrics: Option<Arc<MetricsHub>>,
        alloc: impl FnOnce(&TcConfig) -> Result<B, TcError>,
        partition_rank: Vec<usize>,
        spare_pools: Vec<Vec<usize>>,
    ) -> Result<TcSession<B>, TcError> {
        config.validate()?;
        let assignment = TripletAssignment::new(config.colors);
        let coloring = ColoringHash::new(config.colors, config.seed);
        let remap_cap = config.misra_gries.map(|m| m.t as u64).unwrap_or(0);
        let layout = MramLayout::compute_with_locals(
            config.pim.mram_capacity,
            config.stage_edges,
            remap_cap,
            config.local_nodes.map(u64::from).unwrap_or(0),
            config.sample_capacity,
        )?;
        let hardened = config.effective_hardened();
        let mut sys = alloc(config)?;
        if let Some(hub) = &metrics {
            sys.attach_metrics(Arc::clone(hub));
        }
        if !hardened {
            let writes: Vec<HostWrite> = (0..assignment.nr_dpus())
                .map(|dpu| {
                    let hdr = Header {
                        cap: layout.capacity,
                        rng: rng::seed_for_dpu(config.seed, dpu),
                        ..Header::default()
                    };
                    HostWrite {
                        dpu,
                        offset: 0,
                        data: hdr.encode(),
                    }
                })
                .collect();
            sys.push(writes.clone())?;
            verify_init_writes(&sys, &writes)?;
        }
        let nr_partitions = assignment.nr_dpus();
        let journals = if hardened && config.journal {
            Some(
                (0..nr_partitions)
                    .map(|t| PartitionJournal::new(config.seed, t as u64))
                    .collect(),
            )
        } else {
            None
        };
        // Scrubbing needs the journals as ground truth; without them the
        // cadence (explicit or the fault plan's `scrub=N` hint) is inert.
        let scrub_every = if journals.is_none() {
            0
        } else if config.scrub_interval > 0 {
            config.scrub_interval
        } else {
            config.pim.fault.as_ref().and_then(|f| f.scrub).unwrap_or(0)
        };
        let mut session = TcSession {
            config: *config,
            assignment,
            coloring,
            layout,
            sys,
            summary: config.misra_gries.map(|m| MisraGries::new(m.k)),
            remap_table: Vec::new(),
            remap_assigned: HashSet::new(),
            next_new_id: u32::MAX,
            remap_dirty: false,
            offered: 0,
            kept: 0,
            route_granules: 0,
            peak_routed_bytes: 0,
            hardened,
            partition_home: (0..nr_partitions).collect(),
            partition_rank,
            spare_pools,
            routed_per_partition: vec![0; nr_partitions],
            metrics,
            chunks_done: 0,
            journals,
            scrub_every,
            route_scratch: RouteScratch::default(),
            routed: RoutedBatches::default(),
        };
        if hardened {
            session.init_banks_hardened()?;
        }
        Ok(session)
    }

    /// The number of PIM cores in use.
    pub fn nr_dpus(&self) -> usize {
        self.assignment.nr_dpus()
    }

    /// The per-core MRAM layout in effect.
    pub fn layout(&self) -> &MramLayout {
        &self.layout
    }

    /// Starts recording the simulator's event timeline (see
    /// [`pim_sim::trace`]); retrieve it with [`TcSession::trace`].
    pub fn enable_tracing(&mut self) {
        self.sys.enable_tracing();
    }

    /// The recorded event timeline (empty unless tracing was enabled).
    pub fn trace(&self) -> &pim_sim::Trace {
        self.sys.trace()
    }

    /// Per-core activity/utilization report (instructions, DMA traffic,
    /// MRAM usage, imbalance).
    pub fn system_report(&self) -> pim_sim::SystemReport {
        pim_sim::SystemReport::capture(&self.sys)
    }

    /// Streams a batch of edges into the per-core samples (§3.1's batch
    /// creation + transfer, with reservoir sampling on the cores). O(1)
    /// per edge on the host side — the COO dynamic-update property.
    ///
    /// The batch is routed and transferred in bounded chunks of
    /// [`TcConfig::route_chunk_edges`] input edges (rounded up to the
    /// routing granule), so peak host memory is O(chunk × C) routed edge
    /// keys rather than O(|edges| × C). Sampling streams are keyed by
    /// global granule index, so the result — resident samples, counts,
    /// Misra-Gries summary — is identical for any chunk size.
    pub fn append(&mut self, edges: &[Edge]) -> Result<(), TcError> {
        self.sys.set_phase(Phase::SampleCreation);
        let chunk_edges = (self.config.route_chunk_edges as usize)
            .div_ceil(ROUTE_GRANULE_EDGES)
            .max(1)
            * ROUTE_GRANULE_EDGES;
        for chunk in edges.chunks(chunk_edges) {
            let host_start = Instant::now();
            // Route into the session-owned scratch (taken out for the
            // duration of the chunk to satisfy the borrow checker):
            // buffers are cleared, not freed, between chunks.
            let mut routed = std::mem::take(&mut self.routed);
            let mut scratch = std::mem::take(&mut self.route_scratch);
            route_edges_into(
                chunk,
                RouteParams {
                    assignment: &self.assignment,
                    coloring: &self.coloring,
                    uniform_p: self.config.uniform_p,
                    seed: self.config.seed,
                    mg_capacity: self.config.misra_gries.map(|m| m.k),
                    threads: self.config.pim.host_threads,
                    base_granule: self.route_granules,
                    track_arrivals: self.hardened,
                },
                &mut routed,
                &mut scratch,
            );
            self.sys
                .charge_host_seconds_labeled("route_edges", host_start.elapsed().as_secs_f64());
            self.route_granules += RouteParams::granules_in(chunk.len());
            self.peak_routed_bytes = self.peak_routed_bytes.max(routed.total_routed() * 8);
            self.offered += routed.offered;
            self.kept += routed.kept;
            if let (Some(acc), Some(local)) = (self.summary.as_mut(), routed.summary.as_ref()) {
                acc.merge(local);
                self.remap_dirty = true;
            }
            if let Some(journals) = self.journals.as_mut() {
                // Journal the chunk before staging it: a failover mid-
                // stage replays the already-staged prefix; the in-flight
                // slice re-stages afterwards.
                for (t, batch) in routed.per_dpu.iter().enumerate() {
                    if !batch.is_empty() {
                        journals[t].extend(batch);
                    }
                }
            }
            if self.hardened {
                self.stage_arrivals(&routed.arrivals)?;
            } else {
                self.stage_batches(&routed.per_dpu)?;
            }
            if let Some(hub) = &self.metrics {
                hub.chunk(ChunkObs {
                    index: self.chunks_done,
                    edges: chunk.len() as u64,
                    offered: routed.offered,
                    kept: routed.kept,
                    routed_bytes: routed.total_routed() * 8,
                    peak_routed_bytes: self.peak_routed_bytes,
                    mg_summary: self
                        .summary
                        .as_ref()
                        .map(|s| s.entries().count() as u64)
                        .unwrap_or(0),
                });
            }
            self.routed = routed;
            self.route_scratch = scratch;
            self.chunks_done += 1;
            if self.hardened
                && self.scrub_every > 0
                && self.chunks_done.is_multiple_of(self.scrub_every)
            {
                self.scrub()?;
            }
        }
        Ok(())
    }

    /// Pushes per-core batches through the bounded staging region,
    /// running the receive kernel after each rank-parallel round.
    fn stage_batches(&mut self, per_dpu: &[Vec<u64>]) -> Result<(), TcError> {
        let stage = self.layout.stage_edges as usize;
        let rounds = per_dpu
            .iter()
            .map(|b| b.len().div_ceil(stage))
            .max()
            .unwrap_or(0);
        for round in 0..rounds {
            let mut writes = Vec::new();
            for (dpu, batch) in per_dpu.iter().enumerate() {
                let start = round * stage;
                if start >= batch.len() {
                    continue;
                }
                let chunk = &batch[start..batch.len().min(start + stage)];
                writes.push(HostWrite {
                    dpu,
                    offset: self.layout.staging_off,
                    data: encode_slice(chunk),
                });
                writes.push(HostWrite {
                    dpu,
                    offset: HDR_STAGE_LEN,
                    data: encode_slice(&[chunk.len() as u64]),
                });
            }
            self.sys.push(writes)?;
            let layout = self.layout;
            self.sys
                .execute_labeled("receive", move |ctx| receive::receive_kernel(ctx, &layout))?;
        }
        Ok(())
    }

    /// High-water mark of routed edge-key bytes the host has held at once
    /// across all appends so far. Bounded by
    /// `route_chunk_edges` (granule-rounded) `× C × 8` regardless of
    /// batch size — the streaming-memory guarantee.
    pub fn peak_routed_bytes(&self) -> u64 {
        self.peak_routed_bytes
    }

    /// Runs the counting pipeline (remap → sort → index → count → gather
    /// → correct) on the resident samples and returns the result. Can be
    /// called repeatedly as more batches are appended.
    pub fn count(&mut self) -> Result<TcResult, TcError> {
        if self.hardened {
            return self.count_hardened();
        }
        self.sys.set_phase(Phase::TriangleCount);
        let layout = self.layout;

        // Refresh and ship the heavy-hitter table when tracking is on.
        if self.config.misra_gries.is_some() {
            self.refresh_remap_assignments();
            if !self.remap_table.is_empty() {
                let packed = remap::encode_table(&self.remap_table);
                self.sys.push(
                    (0..self.nr_dpus())
                        .flat_map(|dpu| {
                            [
                                HostWrite {
                                    dpu,
                                    offset: layout.remap_off,
                                    data: encode_slice(&packed),
                                },
                                HostWrite {
                                    dpu,
                                    offset: HDR_REMAP_LEN,
                                    data: encode_slice(&[packed.len() as u64]),
                                },
                            ]
                        })
                        .collect(),
                )?;
                self.sys
                    .execute_labeled("remap", move |ctx| remap::remap_kernel(ctx, &layout))?;
            }
        }

        self.sys
            .execute_labeled("sort", move |ctx| sort::sort_kernel(ctx, &layout))?;
        self.sys
            .execute_labeled("index", move |ctx| index::index_kernel(ctx, &layout))?;
        let local_enabled = self.config.local_nodes.is_some();
        if local_enabled {
            // Local counts restart from zero on every (re)count.
            self.sys.execute_labeled("local_clear", move |ctx| {
                local::local_clear_kernel(ctx, &layout)
            })?;
            self.sys.execute_labeled("local_count", move |ctx| {
                local::local_count_kernel(ctx, &layout)
            })?;
        } else {
            let strategy = self.config.intersect;
            self.sys.execute_labeled("count", move |ctx| {
                count::count_kernel_opts(ctx, &layout, count::RegionLookup::BinarySearch, strategy)
            })?;
        }

        // One rank-parallel gather of every core's header.
        let headers: Vec<Header> = self
            .sys
            .gather(0, 64)?
            .iter()
            .map(|bytes| Header::decode(bytes))
            .collect();
        self.emit_reservoir(&headers);

        let mut reports: Vec<DpuReport> = headers
            .iter()
            .enumerate()
            .map(|(dpu, h)| {
                let triplet = self.assignment.triplet_of(dpu);
                DpuReport {
                    dpu,
                    triplet,
                    raw: h.result,
                    seen: h.seen,
                    capacity: h.cap,
                    resident: h.len,
                    corrected: 0.0,
                    mono: triplet.is_mono(),
                }
            })
            .collect();
        let assembled =
            correction::assemble(&mut reports, self.config.colors, self.config.uniform_p);

        // Gather and correct per-vertex local counts when enabled: each
        // core's raw locals scale by its reservoir factor; monochromatic
        // duplicates are removed via the single-color cores; the uniform
        // factor applies globally — the same algebra as the global count,
        // applied slot-wise.
        let local_counts = if local_enabled {
            let nodes = u64::from(self.config.local_nodes.unwrap_or(0));
            let mut totals = vec![0.0f64; nodes as usize];
            let mut mono_totals = vec![0.0f64; nodes as usize];
            let regions = self.sys.gather(layout.local_off, nodes * 8)?;
            for (dpu, bytes) in regions.iter().enumerate() {
                let raw: Vec<u64> = pim_sim::system::decode_slice(bytes);
                let report = &reports[dpu];
                let factor = if report.raw == 0 {
                    1.0
                } else {
                    report.corrected / report.raw as f64
                };
                for (node, &count) in raw.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let corrected = count as f64 * factor;
                    totals[node] += corrected;
                    if report.mono {
                        mono_totals[node] += corrected;
                    }
                }
            }
            let dedup_c = self.config.colors.saturating_sub(1) as f64;
            let p3 = self.config.uniform_p.powi(3);
            for (t, m) in totals.iter_mut().zip(&mono_totals) {
                *t = ((*t - dedup_c * m) / p3).max(0.0);
            }
            Some(totals)
        } else {
            None
        };

        Ok(TcResult {
            estimate: assembled.estimate,
            raw_total: assembled.raw_total,
            exact: self.config.uniform_p >= 1.0 && !assembled.any_overflow,
            times: self.sys.phase_times(),
            nr_dpus: self.nr_dpus(),
            colors: self.config.colors,
            edges_offered: self.offered,
            edges_kept: self.kept,
            edges_routed: headers.iter().map(|h| h.seen).sum(),
            max_dpu_load: headers.iter().map(|h| h.seen).max().unwrap_or(0),
            reservoir_overflowed: assembled.any_overflow,
            energy: self.sys.energy_report(),
            local_counts,
            dpu_reports: reports,
        })
    }

    /// Emits a `reservoir` occupancy event from freshly gathered headers
    /// (one per partition): total resident edges, total capacity, and the
    /// fullest core's fill fraction.
    fn emit_reservoir(&self, headers: &[Header]) {
        let Some(hub) = &self.metrics else {
            return;
        };
        let resident: u64 = headers.iter().map(|h| h.len).sum();
        let capacity: u64 = headers.iter().map(|h| h.cap).sum();
        let max_fill = headers
            .iter()
            .filter(|h| h.cap > 0)
            .map(|h| h.len as f64 / h.cap as f64)
            .fold(0.0f64, f64::max);
        hub.reservoir(resident, capacity, max_fill);
    }

    /// Counts once more and releases the PIM cores.
    pub fn finish(mut self) -> Result<TcResult, TcError> {
        let result = self.count()?;
        let _times = self.sys.release();
        Ok(result)
    }

    /// Assigns new ids to heavy hitters that entered the top-`t` set,
    /// keeping earlier assignments frozen (consistency with the resident,
    /// already-rewritten samples).
    fn refresh_remap_assignments(&mut self) {
        if !self.remap_dirty {
            return;
        }
        self.remap_dirty = false;
        let (Some(mg_cfg), Some(summary)) = (self.config.misra_gries, self.summary.as_ref()) else {
            return;
        };
        for (node, _count) in summary.top(mg_cfg.t) {
            if self.remap_table.len() >= mg_cfg.t {
                break;
            }
            if self.remap_assigned.insert(node) {
                self.remap_table.push((node, self.next_new_id));
                self.next_new_id -= 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Hardened pipeline: checksummed transfers, bounded retry, and
    // spare-core failover against the simulator's fault-injection plane
    // (see docs/ROBUSTNESS.md). Active when the config enables `hardened`
    // mode, carries a fault plan, or reserves spare cores. The plain
    // paths above stay byte-identical to a fault-free build.
    // ------------------------------------------------------------------

    /// Counters of faults the simulator has injected so far (all-zero
    /// without an active plan).
    pub fn fault_counters(&self) -> pim_sim::FaultCounters {
        self.sys.fault_counters()
    }

    /// Spare cores still available for failover, across all ranks.
    pub fn spares_left(&self) -> usize {
        self.spare_pools.iter().map(Vec::len).sum()
    }

    /// Snapshot of every partition's resident sample (edge keys, in bank
    /// order) plus its stream position `seen`, read through the free host
    /// inspection channel. Recovery tests use this to assert that a
    /// failed-over partition's sample set — and its overflow state — is
    /// bit-identical to the fault-free run's.
    pub fn resident_samples(&self) -> Result<Vec<(Vec<u64>, u64)>, TcError> {
        let mut out = Vec::with_capacity(self.assignment.nr_dpus());
        for &home in &self.partition_home {
            let hdr = Header::decode(&self.sys.dpu(home)?.host_read(0, 64)?);
            let bytes = self
                .sys
                .dpu(home)?
                .host_read(self.layout.sample_off, hdr.len * 8)?;
            out.push((decode_slice::<u64>(&bytes), hdr.seen));
        }
        Ok(out)
    }

    /// Physical core currently hosting partition `t` (changes after a
    /// failover). Chaos tests use this to aim out-of-band corruption.
    pub fn home_of(&self, t: usize) -> usize {
        self.partition_home[t]
    }

    /// Captures a complete restorable snapshot of the session at an
    /// append boundary: every partition's bank (header words, resident
    /// sample, remap prefix) read through the free host inspection
    /// channel, plus the host-side sampling state — Misra-Gries summary,
    /// stream cursors, remap assignments, and RNG journals. `watermark`
    /// is the caller's stream position (for `pimtc dynamic`: update
    /// batches fully applied); restore hands it back so the caller knows
    /// where to resume. Persist with [`SessionCheckpoint::save`].
    pub fn checkpoint(&self, watermark: u64) -> Result<SessionCheckpoint, TcError> {
        let mut banks = Vec::with_capacity(self.assignment.nr_dpus());
        for &home in &self.partition_home {
            let header: Vec<u64> = decode_slice(&self.sys.dpu(home)?.host_read(0, 64)?);
            let (len, remap_len) = (header[1], header[4]);
            let sample = if len > 0 {
                decode_slice(
                    &self
                        .sys
                        .dpu(home)?
                        .host_read(self.layout.sample_off, len * 8)?,
                )
            } else {
                Vec::new()
            };
            let remap = if remap_len > 0 {
                let bytes = self
                    .sys
                    .dpu(home)?
                    .host_read(self.layout.remap_off, remap_len * 8)?;
                decode_slice(&bytes)
            } else {
                Vec::new()
            };
            banks.push(BankSnapshot {
                header,
                sample,
                remap,
            });
        }
        Ok(SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            config: self.config,
            watermark,
            offered: self.offered,
            kept: self.kept,
            route_granules: self.route_granules,
            chunks_done: self.chunks_done,
            peak_routed_bytes: self.peak_routed_bytes,
            routed_per_partition: self.routed_per_partition.clone(),
            remap_table: self.remap_table.clone(),
            next_new_id: self.next_new_id,
            remap_dirty: self.remap_dirty,
            summary: self.summary.as_ref().map(|mg| SummarySnapshot {
                capacity: mg.capacity() as u64,
                items_seen: mg.items_seen(),
                entries: mg.snapshot(),
            }),
            journals: self.journals.clone(),
            banks,
        })
    }

    /// Reinstates a snapshot's state into a freshly started session (same
    /// configuration, identity partition homes). Structural mismatches —
    /// wrong partition count, bank/sample/remap lengths out of agreement,
    /// a summary the configuration doesn't call for — are refused with
    /// [`TcError::Checkpoint`]; a checksum-valid file can still be
    /// rejected here if it was written by a different session shape.
    fn install_snapshot(&mut self, snap: &SessionCheckpoint) -> Result<(), TcError> {
        let parts = self.assignment.nr_dpus();
        let bad = |msg: String| Err(TcError::Checkpoint(msg));
        if snap.banks.len() != parts {
            return bad(format!(
                "snapshot holds {} partition banks but this configuration \
                 has {parts} partitions",
                snap.banks.len()
            ));
        }
        if snap.routed_per_partition.len() != parts {
            return bad(format!(
                "snapshot routed counters cover {} partitions, expected {parts}",
                snap.routed_per_partition.len()
            ));
        }
        if snap.summary.is_some() != self.summary.is_some() {
            return bad("snapshot and configuration disagree on Misra-Gries tracking".to_string());
        }
        if let Some(journals) = &snap.journals {
            if self.journals.is_none() {
                return bad("snapshot carries RNG journals but journaling is off".to_string());
            }
            if journals.len() != parts {
                return bad(format!(
                    "snapshot holds {} journals, expected {parts}",
                    journals.len()
                ));
            }
        } else if self.journals.is_some() {
            return bad("journaling is on but the snapshot has no journals".to_string());
        }
        for (t, bank) in snap.banks.iter().enumerate() {
            if bank.header.len() != 8 {
                return bad(format!(
                    "partition {t} bank header has {} words, expected 8",
                    bank.header.len()
                ));
            }
            if bank.header[0] != self.layout.capacity {
                return bad(format!(
                    "partition {t} was checkpointed at capacity {} but this \
                     layout holds {}",
                    bank.header[0], self.layout.capacity
                ));
            }
            if bank.sample.len() as u64 != bank.header[1] {
                return bad(format!(
                    "partition {t} sample holds {} keys but its header \
                     records len = {}",
                    bank.sample.len(),
                    bank.header[1]
                ));
            }
            if bank.remap.len() as u64 != bank.header[4] {
                return bad(format!(
                    "partition {t} remap prefix holds {} entries but its \
                     header records remap_len = {}",
                    bank.remap.len(),
                    bank.header[4]
                ));
            }
        }
        let summary = match &snap.summary {
            Some(s) => Some(
                MisraGries::from_snapshot(s.capacity as usize, s.items_seen, &s.entries)
                    .map_err(|e| TcError::Checkpoint(format!("Misra-Gries snapshot: {e}")))?,
            ),
            None => None,
        };
        // Banks go back through the host inspection channel: restore is
        // out-of-band bookkeeping, not modeled data movement.
        for (t, bank) in snap.banks.iter().enumerate() {
            let home = self.partition_home[t];
            let dpu = self.sys.dpu_mut(home)?;
            dpu.host_write(0, &encode_slice(&bank.header))?;
            if !bank.sample.is_empty() {
                dpu.host_write(self.layout.sample_off, &encode_slice(&bank.sample))?;
            }
            if !bank.remap.is_empty() {
                dpu.host_write(self.layout.remap_off, &encode_slice(&bank.remap))?;
            }
        }
        self.offered = snap.offered;
        self.kept = snap.kept;
        self.route_granules = snap.route_granules;
        self.chunks_done = snap.chunks_done;
        self.peak_routed_bytes = snap.peak_routed_bytes;
        self.routed_per_partition = snap.routed_per_partition.clone();
        self.remap_table = snap.remap_table.clone();
        self.remap_assigned = snap.remap_table.iter().map(|&(old, _)| old).collect();
        self.next_new_id = snap.next_new_id;
        self.remap_dirty = snap.remap_dirty;
        self.summary = summary;
        self.journals = snap.journals.clone();
        Ok(())
    }

    /// Mutable access to the underlying backend — the chaos-harness
    /// escape hatch for planting out-of-band bank corruption via
    /// [`pim_sim::PimBackend::dpu_mut`]. Bypasses the modeled transfer
    /// path; not for data-plane use.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.sys
    }

    /// Charges one modeled-backoff retry span to the current phase.
    fn charge_retry(&mut self, label: &str, attempt: u32) {
        let backoff = RETRY_BACKOFF_BASE * f64::from(1u32 << attempt.min(6));
        self.sys
            .charge_host_seconds_labeled(&format!("retry:{label}"), backoff);
    }

    /// Fails the session once `failures` consecutive attempts at one
    /// operation have burned through the retry budget.
    fn check_retry_budget(&self, label: &str, failures: u32) -> Result<(), TcError> {
        if failures > self.config.max_retries {
            return Err(TcError::Faulted(format!(
                "{failures} consecutive failed attempts at '{label}' exceeded \
                 max_retries = {}",
                self.config.max_retries
            )));
        }
        Ok(())
    }

    /// Push with bounded retry on transient faults. Permanent deaths and
    /// programming errors propagate to the caller.
    fn retry_push(&mut self, label: &str, writes: Vec<HostWrite>) -> Result<(), TcError> {
        let mut failures = 0u32;
        loop {
            match self.sys.push(writes.clone()) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() => {
                    self.charge_retry(label, failures);
                    failures += 1;
                    self.check_retry_budget(label, failures)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Gather with bounded retry on transient faults.
    fn retry_gather(
        &mut self,
        label: &str,
        offset: u64,
        len: u64,
    ) -> Result<Vec<Vec<u8>>, TcError> {
        let mut failures = 0u32;
        loop {
            match self.sys.gather(offset, len) {
                Ok(out) => return Ok(out),
                Err(e) if e.is_transient() => {
                    self.charge_retry(label, failures);
                    failures += 1;
                    self.check_retry_budget(label, failures)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Dead-core-tolerant kernel launch with bounded retry on transient
    /// launch faults.
    fn retry_execute_masked<R, K>(
        &mut self,
        label: &str,
        kernel: K,
    ) -> Result<Vec<Option<R>>, TcError>
    where
        R: Send,
        K: Fn(&mut pim_sim::DpuContext<'_>) -> pim_sim::SimResult<R> + Sync,
    {
        let mut failures = 0u32;
        loop {
            match self.sys.execute_labeled_masked(label, &kernel) {
                Ok(out) => return Ok(out),
                Err(e) if e.is_transient() => {
                    self.charge_retry(label, failures);
                    failures += 1;
                    self.check_retry_budget(label, failures)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Push with retry *and* read-back verification through the host
    /// inspection channel, so a transient corruption of a critical write
    /// (headers, remap tables, recovery installs) is caught and redone.
    fn push_verified(&mut self, label: &str, writes: Vec<HostWrite>) -> Result<(), TcError> {
        let mut failures = 0u32;
        loop {
            self.retry_push(label, writes.clone())?;
            let landed = writes.iter().all(|w| {
                self.sys
                    .dpu(w.dpu)
                    .and_then(|d| d.host_read(w.offset, w.data.len() as u64))
                    .map(|got| got == w.data)
                    .unwrap_or(false)
            });
            if landed {
                return Ok(());
            }
            self.charge_retry(label, failures);
            failures += 1;
            self.check_retry_budget(label, failures)?;
        }
    }

    /// Verify-on-gather: every live core seals the region with an FNV
    /// digest; the host gathers both and re-checks the math, retrying the
    /// whole round until the partition homes' copies verify.
    fn gather_verified(
        &mut self,
        label: &str,
        offset: u64,
        words: u64,
    ) -> Result<Vec<Vec<u8>>, TcError> {
        let layout = self.layout;
        let mut failures = 0u32;
        loop {
            let sealed = self.retry_execute_masked("seal", move |ctx| {
                checksum::seal_kernel(ctx, offset, words, layout.staging_slot(0))
            })?;
            // A masked `None` at a partition home is a death the launch
            // absorbed (a cluster rank re-issues a killed launch instead
            // of failing ranks that already ran): surface it here, or the
            // dead core's zeroed gather tombstone would never verify.
            if let Some(&home) = self.partition_home.iter().find(|&&d| sealed[d].is_none()) {
                return Err(TcError::Sim(SimError::DpuDead { dpu: home }));
            }
            let regions = self.retry_gather(label, offset, words * 8)?;
            let seals = self.retry_gather("seal", layout.staging_off, 8)?;
            let ok = self.partition_home.iter().all(|&d| {
                let sealed = u64::from_le_bytes(seals[d][..8].try_into().unwrap());
                checksum::fnv1a_words(&decode_slice::<u64>(&regions[d])) == sealed
            });
            if ok {
                return Ok(regions);
            }
            self.charge_retry(label, failures);
            failures += 1;
            self.check_retry_budget(label, failures)?;
        }
    }

    /// Writes every physical core's initial bank (partition headers keyed
    /// by partition id, zeroed staging region), verifying the writes and
    /// absorbing cores that die mid-initialization.
    fn init_banks_hardened(&mut self) -> Result<(), TcError> {
        loop {
            let zeros = vec![0u8; (self.layout.stage_edges * 8) as usize];
            let mut writes = Vec::new();
            let bank = |dpu: usize, rng_key: usize| {
                let hdr = Header {
                    cap: self.layout.capacity,
                    rng: rng::seed_for_dpu(self.config.seed, rng_key),
                    ..Header::default()
                };
                [
                    HostWrite {
                        dpu,
                        offset: 0,
                        data: hdr.encode(),
                    },
                    HostWrite {
                        dpu,
                        offset: self.layout.staging_off,
                        data: zeros.clone(),
                    },
                ]
            };
            for t in 0..self.assignment.nr_dpus() {
                writes.extend(bank(self.partition_home[t], t));
            }
            for pool in &self.spare_pools {
                for &s in pool {
                    writes.extend(bank(s, s));
                }
            }
            match self.push_verified("init", writes) {
                Ok(()) => return Ok(()),
                Err(TcError::Sim(SimError::DpuDead { dpu })) => {
                    let mut recovered = Vec::new();
                    self.recover_dpu(dpu, &HashSet::new(), &mut recovered)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Streams routed arrival keys through checksummed staging slices.
    /// Each slice holds `stage_edges − 1` keys (one slot is the digest);
    /// per-partition batches are rebuilt from the keys so a slice can be
    /// replayed from scratch after a failover.
    fn stage_arrivals(&mut self, arrivals: &[u64]) -> Result<(), TcError> {
        let slice_cap = (self.layout.stage_edges - 1).max(1) as usize;
        for slice in arrivals.chunks(slice_cap) {
            self.stage_slice_hardened(slice)?;
        }
        Ok(())
    }

    /// Pushes one slice's per-partition batches (sealed with an FNV
    /// digest) and drives the hardened receive kernel until every
    /// partition has consumed its batch, retrying corrupted transfers and
    /// failing over dead cores along the way.
    fn stage_slice_hardened(&mut self, slice: &[u64]) -> Result<(), TcError> {
        let nr_parts = self.assignment.nr_dpus();
        let mut batches: Vec<Vec<u64>> = vec![Vec::new(); nr_parts];
        let mut routes = Vec::new();
        for &key in slice {
            let (u, v) = edge_unkey(key);
            let (ca, cb) = self.coloring.edge_colors(u, v);
            self.assignment.dpus_for_edge(ca, cb, &mut routes);
            for &t in &routes {
                batches[t as usize].push(key);
            }
        }
        let mut done: Vec<bool> = batches.iter().map(Vec::is_empty).collect();
        let layout = self.layout;
        let mut failures = 0u32;
        while done.iter().any(|d| !d) {
            let mut writes = Vec::new();
            for (t, batch) in batches.iter().enumerate() {
                if done[t] {
                    continue;
                }
                let mut payload = batch.clone();
                payload.push(checksum::fnv1a_words(batch));
                writes.push(HostWrite {
                    dpu: self.partition_home[t],
                    offset: layout.staging_off,
                    data: encode_slice(&payload),
                });
                writes.push(HostWrite {
                    dpu: self.partition_home[t],
                    offset: HDR_STAGE_LEN,
                    data: encode_slice(&[batch.len() as u64]),
                });
            }
            match self.sys.push(writes) {
                Ok(()) => {}
                Err(e) if e.is_transient() => {
                    self.charge_retry("stage_push", failures);
                    failures += 1;
                    self.check_retry_budget("stage_push", failures)?;
                    continue;
                }
                Err(SimError::DpuDead { dpu }) => {
                    self.fail_over(dpu, slice, &batches, &mut done)?;
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
            let results = match self.sys.execute_labeled_masked("receive", move |ctx| {
                receive::receive_kernel_hardened(ctx, &layout)
            }) {
                Ok(r) => r,
                Err(e) if e.is_transient() => {
                    self.charge_retry("receive", failures);
                    failures += 1;
                    self.check_retry_budget("receive", failures)?;
                    continue;
                }
                Err(SimError::DpuDead { dpu }) => {
                    self.fail_over(dpu, slice, &batches, &mut done)?;
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            let mut progressed = false;
            let mut mismatches = 0u32;
            let mut dead_home = None;
            for (t, batch_done) in done.iter_mut().enumerate() {
                if *batch_done {
                    continue;
                }
                match results[self.partition_home[t]] {
                    Some(checksum::CHECKSUM_MISMATCH) => mismatches += 1,
                    Some(_) => {
                        *batch_done = true;
                        progressed = true;
                    }
                    None => dead_home = Some(self.partition_home[t]),
                }
            }
            if let Some(dpu) = dead_home {
                self.fail_over(dpu, slice, &batches, &mut done)?;
                continue;
            }
            if progressed {
                failures = 0;
            }
            if mismatches > 0 {
                for _ in 0..mismatches {
                    self.charge_retry("stage_checksum", failures);
                }
                failures += 1;
                self.check_retry_budget("stage_checksum", failures)?;
            }
        }
        for (t, batch) in batches.iter().enumerate() {
            self.routed_per_partition[t] += batch.len() as u64;
        }
        Ok(())
    }

    /// Handles a core death discovered mid-slice: recover the affected
    /// partitions (excluding the in-flight slice keys, which are replayed
    /// afterwards), then mark their batches not-done again.
    fn fail_over(
        &mut self,
        dead: usize,
        slice: &[u64],
        batches: &[Vec<u64>],
        done: &mut [bool],
    ) -> Result<(), TcError> {
        let exclude: HashSet<u64> = slice.iter().copied().collect();
        let mut recovered = Vec::new();
        self.recover_dpu(dead, &exclude, &mut recovered)?;
        for t in recovered {
            done[t] = batches[t].is_empty();
        }
        Ok(())
    }

    /// Pops a replacement core for partition `t`: its own rank's spare
    /// pool first (preserving single-rank pop order exactly), then the
    /// other ranks' pools in round-robin order. Spares that died with
    /// their rank (or out of band) are discarded, never selected — a
    /// whole-rank outage takes its spare block down with it, so recovery
    /// must be able to re-home a partition onto a *different* rank's
    /// spares. Updates `partition_rank[t]` to the donor rank.
    fn take_spare(&mut self, t: usize) -> Option<usize> {
        let own = self.partition_rank[t];
        let ranks = self.spare_pools.len();
        for offset in 0..ranks {
            let r = (own + offset) % ranks;
            while let Some(spare) = self.spare_pools[r].pop() {
                if self.sys.is_dpu_lost(spare) {
                    continue; // Lost with its rank; drop it from the pool.
                }
                self.partition_rank[t] = r;
                return Some(spare);
            }
        }
        None
    }

    /// Replaces a permanently dead core. An idle spare just leaves the
    /// pool; a partition home is rebuilt from the C-fold redundancy of
    /// the surviving replicas onto a fresh spare. `exclude` lists edge
    /// keys in flight (to be replayed by the caller); `recovered`
    /// collects the partitions that were reinstalled.
    fn recover_dpu(
        &mut self,
        dead: usize,
        exclude: &HashSet<u64>,
        recovered: &mut Vec<usize>,
    ) -> Result<(), TcError> {
        let start = Instant::now();
        for pool in &mut self.spare_pools {
            if let Some(pos) = pool.iter().position(|&s| s == dead) {
                pool.remove(pos);
                return Ok(());
            }
        }
        let Some(t) = self.partition_home.iter().position(|&h| h == dead) else {
            return Ok(()); // Already failed over by a nested recovery.
        };
        if self.journals.is_some() {
            // Journaled sessions skip survivor reconstruction entirely:
            // the lost bank — overflowed or not, remapped or not, even
            // with C = 1 — is re-derived by replaying the journal.
            let Some(spare) = self.take_spare(t) else {
                return Err(TcError::Faulted(format!(
                    "core {dead} (partition {t}) died with no spare cores left \
                     in any rank (configure spare_dpus)"
                )));
            };
            self.install_replayed(t, spare, exclude, recovered)?;
            self.partition_home[t] = spare;
            recovered.push(t);
            if let Some(hub) = &self.metrics {
                hub.failover(t as u64, spare as u64);
            }
            self.sys
                .charge_host_seconds_labeled("recover", start.elapsed().as_secs_f64());
            return Ok(());
        }
        if self.config.misra_gries.is_some() {
            return Err(TcError::Faulted(format!(
                "partition {t} lost while Misra-Gries remapping is active; \
                 remapped resident samples cannot be reconstructed"
            )));
        }
        if self.config.colors < 2 {
            return Err(TcError::Faulted(
                "C = 1 keeps a single replica of every edge; a lost \
                 partition has no survivors to rebuild from"
                    .into(),
            ));
        }
        let routed = self.routed_per_partition[t];
        if routed > self.layout.capacity {
            return Err(TcError::Faulted(format!(
                "partition {t} overflowed its reservoir ({routed} edges \
                 routed > capacity {}); survivors no longer hold every edge",
                self.layout.capacity
            )));
        }
        let Some(spare) = self.take_spare(t) else {
            return Err(TcError::Faulted(format!(
                "core {dead} (partition {t}) died with no spare cores left \
                 in any rank (configure spare_dpus)"
            )));
        };

        // Reconstruct the lost sample from the survivors: every edge of
        // partition t lives on C−1 other partitions (first-seen dedup
        // keeps arrival order, so the rebuilt sample is bit-identical).
        let mut keys = Vec::new();
        let mut seen_keys = HashSet::new();
        let mut routes = Vec::new();
        for q in 0..self.assignment.nr_dpus() {
            if q == t {
                continue;
            }
            let home = self.partition_home[q];
            if self.sys.is_dpu_lost(home) {
                continue;
            }
            // Banks can be unwritten if a death hits during init; an
            // unreadable survivor contributes nothing and the
            // completeness check below stays in force.
            let Ok(hdr_bytes) = self.sys.dpu(home)?.host_read(0, 64) else {
                continue;
            };
            let hdr = Header::decode(&hdr_bytes);
            if hdr.len == 0 {
                continue;
            }
            let bytes = self
                .sys
                .dpu(home)?
                .host_read(self.layout.sample_off, hdr.len * 8)?;
            for key in decode_slice::<u64>(&bytes) {
                if exclude.contains(&key) || seen_keys.contains(&key) {
                    continue;
                }
                let (u, v) = edge_unkey(key);
                let (ca, cb) = self.coloring.edge_colors(u, v);
                self.assignment.dpus_for_edge(ca, cb, &mut routes);
                if routes.contains(&(t as u32)) {
                    seen_keys.insert(key);
                    keys.push(key);
                }
            }
        }
        if keys.len() as u64 != routed {
            return Err(TcError::Faulted(format!(
                "reconstructed {} of {routed} edges for partition {t}; the \
                 surviving replicas are incomplete (overflowed reservoirs \
                 or duplicated input edges)",
                keys.len()
            )));
        }

        // Install on the spare. The reservoir never overflowed (checked
        // above), so its RNG stream was never drawn: the pristine
        // per-partition seed is still the correct state.
        let hdr = Header {
            cap: self.layout.capacity,
            len: keys.len() as u64,
            seen: routed,
            rng: rng::seed_for_dpu(self.config.seed, t),
            ..Header::default()
        };
        let mut writes = vec![
            HostWrite {
                dpu: spare,
                offset: 0,
                data: hdr.encode(),
            },
            HostWrite {
                dpu: spare,
                offset: self.layout.staging_off,
                data: vec![0u8; (self.layout.stage_edges * 8) as usize],
            },
        ];
        if !keys.is_empty() {
            writes.push(HostWrite {
                dpu: spare,
                offset: self.layout.sample_off,
                data: encode_slice(&keys),
            });
        }
        loop {
            match self.push_verified("recover_install", writes.clone()) {
                Ok(()) => break,
                Err(TcError::Sim(SimError::DpuDead { dpu })) if dpu != spare => {
                    // Another core died mid-install; recover it too (the
                    // recursion is bounded by the spare pool), then retry.
                    self.recover_dpu(dpu, exclude, recovered)?;
                }
                Err(TcError::Sim(SimError::DpuDead { .. })) => {
                    return Err(TcError::Faulted(format!(
                        "replacement core {spare} for partition {t} died \
                         during recovery"
                    )));
                }
                Err(e) => return Err(e),
            }
        }
        self.partition_home[t] = spare;
        recovered.push(t);
        if let Some(hub) = &self.metrics {
            hub.failover(t as u64, spare as u64);
        }
        self.sys
            .charge_host_seconds_labeled("recover", start.elapsed().as_secs_f64());
        Ok(())
    }

    /// Re-derives partition `t`'s exact bank state by replaying its
    /// journal prefix (the keys staged so far) through the receive
    /// kernel's decision arithmetic — the same xorshift64* stream, seeded
    /// identically — and the journaled remap/sort marks. Keys journaled
    /// past `routed_per_partition[t]` are in flight and re-staged by the
    /// caller, so the replay stops before them.
    fn replay_partition(&self, t: usize) -> ReplayedBank {
        let journal = &self
            .journals
            .as_ref()
            .expect("journal replay needs journals")[t];
        let keys = journal.keys();
        let marks = journal.marks();
        let upto = (self.routed_per_partition[t] as usize).min(keys.len());
        let cap = self.layout.capacity;
        let mut sample: Vec<u64> = Vec::with_capacity(upto.min(cap as usize));
        let mut seen = 0u64;
        let mut state = rng::seed_for_dpu(self.config.seed, t);
        let mut remap_packed = Vec::new();
        let mut marks_applied = 0u64;
        let mut mi = 0usize;
        let apply_mark = |sample: &mut Vec<u64>, packed: &mut Vec<u64>, table_len: u64| {
            *packed = remap::encode_table(&self.remap_table[..table_len as usize]);
            for key in sample.iter_mut() {
                *key = remap::map_key(packed, *key);
            }
            sample.sort_unstable();
        };
        for (i, &key) in keys[..upto].iter().enumerate() {
            while mi < marks.len() && marks[mi].offset == i as u64 {
                apply_mark(&mut sample, &mut remap_packed, marks[mi].table_len);
                marks_applied += 1;
                mi += 1;
            }
            // The receive kernel's decisions, verbatim: bulk-fill while
            // the sample has room, reservoir-replace past capacity.
            seen += 1;
            if (sample.len() as u64) < cap {
                sample.push(key);
            } else if rng::below_pure(&mut state, seen) < cap {
                let victim = rng::below_pure(&mut state, sample.len() as u64);
                sample[victim as usize] = key;
            }
        }
        while mi < marks.len() && marks[mi].offset <= upto as u64 {
            apply_mark(&mut sample, &mut remap_packed, marks[mi].table_len);
            marks_applied += 1;
            mi += 1;
        }
        ReplayedBank {
            sample,
            seen,
            rng: state,
            remap: remap_packed,
            marks_applied,
        }
    }

    /// Installs partition `t`'s replayed bank onto physical core
    /// `target`, verifying every write and absorbing unrelated cores that
    /// die mid-install. Fails loudly if `target` itself dies.
    fn install_replayed(
        &mut self,
        t: usize,
        target: usize,
        exclude: &HashSet<u64>,
        recovered: &mut Vec<usize>,
    ) -> Result<(), TcError> {
        let bank = self.replay_partition(t);
        let hdr = Header {
            cap: self.layout.capacity,
            len: bank.sample.len() as u64,
            seen: bank.seen,
            rng: bank.rng,
            remap_len: bank.remap.len() as u64,
            ..Header::default()
        };
        let mut writes = vec![
            HostWrite {
                dpu: target,
                offset: 0,
                data: hdr.encode(),
            },
            HostWrite {
                dpu: target,
                offset: self.layout.staging_off,
                data: vec![0u8; (self.layout.stage_edges * 8) as usize],
            },
        ];
        if !bank.sample.is_empty() {
            writes.push(HostWrite {
                dpu: target,
                offset: self.layout.sample_off,
                data: encode_slice(&bank.sample),
            });
        }
        if !bank.remap.is_empty() {
            writes.push(HostWrite {
                dpu: target,
                offset: self.layout.remap_off,
                data: encode_slice(&bank.remap),
            });
        }
        loop {
            match self.push_verified("journal_install", writes.clone()) {
                Ok(()) => break,
                Err(TcError::Sim(SimError::DpuDead { dpu })) if dpu != target => {
                    self.recover_dpu(dpu, exclude, recovered)?;
                }
                Err(TcError::Sim(SimError::DpuDead { .. })) => {
                    return Err(TcError::Faulted(format!(
                        "replacement core {target} for partition {t} died \
                         during journal replay"
                    )));
                }
                Err(e) => return Err(e),
            }
        }
        if let Some(hub) = &self.metrics {
            hub.journal_replay(
                t as u64,
                target as u64,
                self.routed_per_partition[t],
                bank.marks_applied,
            );
        }
        Ok(())
    }

    /// One proactive scrub sweep (see [`TcConfig::scrub_interval`]):
    /// every live core seals its resident sample with the FNV digest
    /// kernel, and the host compares each seal against the digest of the
    /// *journal-replayed* sample — the ground truth a bank must hold.
    /// Dead cores fail over immediately instead of on next touch; a bank
    /// whose seal diverges from its journal (an out-of-band upset no
    /// transfer checksum could have caught) is reinstalled in place.
    ///
    /// Requires journals: without them there is no reference to scrub
    /// against, so the session refuses rather than sweep blind.
    pub fn scrub(&mut self) -> Result<ScrubOutcome, TcError> {
        if !self.hardened {
            return Err(TcError::Config(
                "scrubbing walks the hardened seal-verify path; enable \
                 hardened mode (or configure faults/spares/scrub_interval)"
                    .into(),
            ));
        }
        if self.journals.is_none() {
            return Err(TcError::Config(
                "scrubbing compares resident banks against their replayed \
                 journals; enable journaling to scrub"
                    .into(),
            ));
        }
        let start = Instant::now();
        let layout = self.layout;
        let mut failed_over = 0u64;
        let mut repaired = 0u64;
        let none = HashSet::new();
        let seals = loop {
            match self.retry_execute_masked("scrub_seal", move |ctx| {
                let len = {
                    let mut t0 = ctx.tasklet(0)?;
                    Header::read(&mut t0)?.len
                };
                checksum::seal_kernel(ctx, layout.sample_off, len, layout.staging_slot(0))?;
                Ok(len)
            }) {
                Ok(r) => break r,
                Err(TcError::Sim(SimError::DpuDead { dpu })) => {
                    let mut rec = Vec::new();
                    self.recover_dpu(dpu, &none, &mut rec)?;
                    failed_over += rec.len() as u64;
                }
                Err(e) => return Err(e),
            }
        };
        for t in 0..self.assignment.nr_dpus() {
            let home = self.partition_home[t];
            let Some(len) = seals[home] else {
                // The core died after the launch round: fail over now.
                let mut rec = Vec::new();
                self.recover_dpu(home, &none, &mut rec)?;
                failed_over += rec.len() as u64;
                continue;
            };
            let readback = self
                .sys
                .dpu(home)
                .and_then(|d| d.host_read(layout.staging_off, 8));
            let Ok(sealed) = readback else {
                // The core died between the seal round and the read-back.
                let mut rec = Vec::new();
                self.recover_dpu(home, &none, &mut rec)?;
                failed_over += rec.len() as u64;
                continue;
            };
            let sealed = u64::from_le_bytes(sealed[..8].try_into().unwrap());
            let bank = self.replay_partition(t);
            let expect = checksum::fnv1a_words(&bank.sample);
            if sealed != expect || len != bank.sample.len() as u64 {
                let mut rec = Vec::new();
                self.install_replayed(t, home, &none, &mut rec)?;
                repaired += 1;
            }
        }
        self.sys
            .charge_host_seconds_labeled("scrub", start.elapsed().as_secs_f64());
        let outcome = ScrubOutcome {
            partitions: self.assignment.nr_dpus() as u64,
            repaired,
            failed_over,
        };
        if let Some(hub) = &self.metrics {
            hub.scrub(outcome.partitions, outcome.repaired, outcome.failed_over);
        }
        Ok(outcome)
    }

    /// Hardened counting: runs the verified pipeline, failing over and
    /// restarting from the top if a core dies mid-count (the pipeline is
    /// idempotent over the resident samples).
    fn count_hardened(&mut self) -> Result<TcResult, TcError> {
        loop {
            match self.count_hardened_once() {
                Err(TcError::Sim(SimError::DpuDead { dpu })) => {
                    let mut recovered = Vec::new();
                    self.recover_dpu(dpu, &HashSet::new(), &mut recovered)?;
                }
                other => return other,
            }
        }
    }

    /// One attempt at the counting pipeline with checksummed transfers:
    /// verified remap pushes, retried kernel launches, and seal-verified
    /// result gathers. Core deaths surface as `Sim(DpuDead)` for
    /// [`Self::count_hardened`] to absorb.
    fn count_hardened_once(&mut self) -> Result<TcResult, TcError> {
        self.sys.set_phase(Phase::TriangleCount);
        let layout = self.layout;

        if self.config.misra_gries.is_some() {
            self.refresh_remap_assignments();
            if !self.remap_table.is_empty() {
                let packed = remap::encode_table(&self.remap_table);
                let writes = self
                    .partition_home
                    .iter()
                    .flat_map(|&dpu| {
                        [
                            HostWrite {
                                dpu,
                                offset: layout.remap_off,
                                data: encode_slice(&packed),
                            },
                            HostWrite {
                                dpu,
                                offset: HDR_REMAP_LEN,
                                data: encode_slice(&[packed.len() as u64]),
                            },
                        ]
                    })
                    .collect();
                self.push_verified("remap_table", writes)?;
                self.retry_execute_masked("remap", move |ctx| remap::remap_kernel(ctx, &layout))?;
            }
        }

        self.retry_execute_masked("sort", move |ctx| sort::sort_kernel(ctx, &layout))?;
        self.retry_execute_masked("index", move |ctx| index::index_kernel(ctx, &layout))?;
        let local_enabled = self.config.local_nodes.is_some();
        if local_enabled {
            self.retry_execute_masked("local_clear", move |ctx| {
                local::local_clear_kernel(ctx, &layout)
            })?;
            self.retry_execute_masked("local_count", move |ctx| {
                local::local_count_kernel(ctx, &layout)
            })?;
        } else {
            let strategy = self.config.intersect;
            self.retry_execute_masked("count", move |ctx| {
                count::count_kernel_opts(ctx, &layout, count::RegionLookup::BinarySearch, strategy)
            })?;
        }

        let headers: Vec<Header> = self
            .gather_verified("headers", 0, 8)?
            .iter()
            .map(|bytes| Header::decode(bytes))
            .collect();
        let home_headers: Vec<Header> = self.partition_home.iter().map(|&d| headers[d]).collect();
        self.emit_reservoir(&home_headers);

        let mut reports: Vec<DpuReport> = home_headers
            .iter()
            .enumerate()
            .map(|(t, h)| {
                let triplet = self.assignment.triplet_of(t);
                DpuReport {
                    dpu: t,
                    triplet,
                    raw: h.result,
                    seen: h.seen,
                    capacity: h.cap,
                    resident: h.len,
                    corrected: 0.0,
                    mono: triplet.is_mono(),
                }
            })
            .collect();
        let assembled =
            correction::assemble(&mut reports, self.config.colors, self.config.uniform_p);

        let local_counts = if local_enabled {
            let nodes = u64::from(self.config.local_nodes.unwrap_or(0));
            let mut totals = vec![0.0f64; nodes as usize];
            let mut mono_totals = vec![0.0f64; nodes as usize];
            let regions = self.gather_verified("locals", layout.local_off, nodes)?;
            for (t, report) in reports.iter().enumerate() {
                let raw: Vec<u64> = decode_slice(&regions[self.partition_home[t]]);
                let factor = if report.raw == 0 {
                    1.0
                } else {
                    report.corrected / report.raw as f64
                };
                for (node, &count) in raw.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let corrected = count as f64 * factor;
                    totals[node] += corrected;
                    if report.mono {
                        mono_totals[node] += corrected;
                    }
                }
            }
            let dedup_c = self.config.colors.saturating_sub(1) as f64;
            let p3 = self.config.uniform_p.powi(3);
            for (t, m) in totals.iter_mut().zip(&mono_totals) {
                *t = ((*t - dedup_c * m) / p3).max(0.0);
            }
            Some(totals)
        } else {
            None
        };

        // Journal the count barrier: every partition's resident sample was
        // remapped (by the table prefix active right now) and sorted. A
        // replay applies the same prefix + sort at this offset, so a bank
        // lost *after* this point re-derives the post-count state and a
        // bank lost *mid-count* re-derives the pre-count state (the retry
        // re-runs remap+sort on every core, converging them).
        if let Some(journals) = self.journals.as_mut() {
            let table_len = self.remap_table.len() as u64;
            for journal in journals.iter_mut() {
                journal.mark(table_len);
            }
        }

        Ok(TcResult {
            estimate: assembled.estimate,
            raw_total: assembled.raw_total,
            exact: self.config.uniform_p >= 1.0 && !assembled.any_overflow,
            times: self.sys.phase_times(),
            nr_dpus: self.nr_dpus(),
            colors: self.config.colors,
            edges_offered: self.offered,
            edges_kept: self.kept,
            edges_routed: home_headers.iter().map(|h| h.seen).sum(),
            max_dpu_load: home_headers.iter().map(|h| h.seen).max().unwrap_or(0),
            reservoir_overflowed: assembled.any_overflow,
            energy: self.sys.energy_report(),
            local_counts,
            dpu_reports: reports,
        })
    }
}

/// Checksum coverage for the initial bank broadcast on the *plain*
/// (non-hardened) path: reads every header back through the host
/// inspection channel and compares FNV-1a digests against what was
/// pushed. Inspection reads are free (no modeled time), so a verified
/// plain init stays time-identical to an unverified one; a mismatch —
/// a corruption fault landing on the very first transfer — fails the
/// session loudly instead of silently seeding a core with a corrupt
/// header.
fn verify_init_writes<B: PimBackend>(sys: &B, writes: &[HostWrite]) -> Result<(), TcError> {
    for w in writes {
        let got = sys
            .dpu(w.dpu)?
            .host_read(w.offset, w.data.len() as u64)
            .map_err(TcError::Sim)?;
        if !init_write_verifies(&w.data, &got) {
            return Err(TcError::Faulted(format!(
                "initial header for core {} failed checksum verification \
                 after the init transfer (a corruption fault landed on it); \
                 enable hardened mode for retrying transfers",
                w.dpu
            )));
        }
    }
    Ok(())
}

/// Digest comparison for one init write: both sides are hashed (rather
/// than byte-compared) so the check exercises the same FNV-1a primitive
/// the hardened pipeline seals staged slices with.
pub(crate) fn init_write_verifies(expected: &[u8], got: &[u8]) -> bool {
    if expected.len() != got.len() || !expected.len().is_multiple_of(8) {
        return false;
    }
    checksum::fnv1a_words(&decode_slice::<u64>(expected))
        == checksum::fnv1a_words(&decode_slice::<u64>(got))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_graph::{gen, triangle, CooGraph};
    use pim_sim::PimConfig;

    fn tiny_config(colors: u32) -> TcConfig {
        TcConfig::builder()
            .colors(colors)
            .pim(PimConfig {
                total_dpus: 512,
                mram_capacity: 1 << 20,
                ..PimConfig::tiny()
            })
            .stage_edges(256)
            .build()
            .unwrap()
    }

    #[test]
    fn exact_count_on_complete_graph() {
        let g = gen::simple::complete(20);
        let r = crate::count_triangles(&g, &tiny_config(3)).unwrap();
        assert!(r.exact);
        assert_eq!(r.rounded(), 1140);
        // Raw total exceeds the estimate by the monochromatic duplicates.
        assert!(r.raw_total >= r.rounded());
    }

    #[test]
    fn exact_count_matches_reference_on_random_graphs() {
        for (colors, seed) in [(1u32, 0u64), (2, 1), (3, 2), (5, 3)] {
            let g = gen::erdos_renyi(120, 0.12, seed);
            let expect = triangle::count_exact(&g);
            let r = crate::count_triangles(&g, &tiny_config(colors)).unwrap();
            assert!(r.exact, "C={colors} should be exact");
            assert_eq!(r.rounded(), expect, "C={colors} seed={seed}");
        }
    }

    #[test]
    fn exact_count_with_clustered_triangles() {
        // Heavy mono-color pressure: many triangles inside tight blocks.
        let mut g = gen::planted_cliques(
            gen::cliques::PlantedCliqueParams {
                n: 60,
                communities: 4,
                community_size: 10,
                q: 1.0,
                background_p: 0.05,
            },
            5,
        );
        // The pipeline requires deduplicated input (§4.1 preprocessing):
        // the background ER layer can duplicate clique edges.
        g.preprocess(0);
        let expect = triangle::count_exact(&g);
        for colors in [1u32, 2, 4] {
            let r = crate::count_triangles(&g, &tiny_config(colors)).unwrap();
            assert_eq!(r.rounded(), expect, "C={colors}");
        }
    }

    #[test]
    fn incremental_session_matches_from_scratch() {
        let g = gen::erdos_renyi(100, 0.15, 9);
        let mut pre = g.clone();
        pre.preprocess(3);
        let batches = pre.split_batches(4);
        let mut session = TcSession::start(&tiny_config(3)).unwrap();
        let mut cumulative = CooGraph::new();
        for batch in &batches {
            session.append(batch).unwrap();
            cumulative.extend_edges(batch);
            let r = session.count().unwrap();
            assert_eq!(
                r.rounded(),
                triangle::count_exact(&cumulative),
                "after {} edges",
                cumulative.num_edges()
            );
        }
    }

    #[test]
    fn misra_gries_remap_preserves_exactness() {
        let mut g = gen::chung_lu(
            gen::chung_lu::ChungLuParams {
                n: 400,
                gamma: 2.1,
                avg_degree: 8.0,
                max_degree_frac: 0.4,
            },
            11,
        );
        g.preprocess(0);
        let expect = triangle::count_exact(&g);
        let config = TcConfig::builder()
            .colors(3)
            .misra_gries(64, 16)
            .pim(PimConfig {
                total_dpus: 512,
                mram_capacity: 1 << 20,
                ..PimConfig::tiny()
            })
            .stage_edges(256)
            .build()
            .unwrap();
        let r = crate::count_triangles(&g, &config).unwrap();
        assert!(r.exact);
        assert_eq!(r.rounded(), expect);
    }

    #[test]
    fn remap_stays_consistent_across_updates() {
        let mut g = gen::chung_lu(
            gen::chung_lu::ChungLuParams {
                n: 300,
                gamma: 2.1,
                avg_degree: 8.0,
                max_degree_frac: 0.4,
            },
            13,
        );
        g.preprocess(1);
        let config = TcConfig::builder()
            .colors(2)
            .misra_gries(32, 8)
            .pim(PimConfig {
                total_dpus: 512,
                mram_capacity: 1 << 20,
                ..PimConfig::tiny()
            })
            .stage_edges(128)
            .build()
            .unwrap();
        let mut session = TcSession::start(&config).unwrap();
        let mut cumulative = CooGraph::new();
        for batch in g.split_batches(3) {
            session.append(&batch).unwrap();
            cumulative.extend_edges(&batch);
            let r = session.count().unwrap();
            assert_eq!(r.rounded(), triangle::count_exact(&cumulative));
        }
    }

    #[test]
    fn uniform_sampling_marks_result_approximate() {
        let g = gen::simple::complete(40);
        let config = TcConfig::builder()
            .colors(2)
            .uniform_p(0.5)
            .pim(PimConfig {
                total_dpus: 512,
                mram_capacity: 1 << 20,
                ..PimConfig::tiny()
            })
            .stage_edges(256)
            .build()
            .unwrap();
        let r = crate::count_triangles(&g, &config).unwrap();
        assert!(!r.exact);
        let exact = 40u64 * 39 * 38 / 6;
        // Loose sanity: within a factor of 2 for a dense graph.
        assert!(
            r.estimate > exact as f64 * 0.5 && r.estimate < exact as f64 * 2.0,
            "estimate {} vs exact {exact}",
            r.estimate
        );
    }

    #[test]
    fn reservoir_overflow_marks_result_approximate() {
        let g = gen::simple::complete(40); // 780 edges, 9880 triangles
        let config = TcConfig::builder()
            .colors(2)
            .sample_capacity(120)
            .pim(PimConfig {
                total_dpus: 512,
                mram_capacity: 1 << 20,
                ..PimConfig::tiny()
            })
            .stage_edges(64)
            .build()
            .unwrap();
        let r = crate::count_triangles(&g, &config).unwrap();
        assert!(r.reservoir_overflowed);
        assert!(!r.exact);
        let exact = 9880f64;
        assert!(
            r.estimate > exact * 0.3 && r.estimate < exact * 3.0,
            "estimate {}",
            r.estimate
        );
    }

    #[test]
    fn phase_times_are_populated() {
        // Timing is a timed-backend guarantee; pin it so the test stays
        // meaningful under PIM_TC_BACKEND=functional.
        let g = gen::simple::complete(15);
        let config = TcConfig {
            backend: crate::config::ExecBackend::Timed,
            ..tiny_config(2)
        };
        let r = crate::count_triangles(&g, &config).unwrap();
        assert!(r.times.setup > 0.0);
        assert!(r.times.sample_creation > 0.0);
        assert!(r.times.triangle_count > 0.0);
    }

    #[test]
    fn functional_backend_matches_timed_counts() {
        let g = gen::erdos_renyi(120, 0.12, 5);
        let base = tiny_config(3);
        let timed = crate::count_triangles_in::<pim_sim::TimedBackend>(&g, &base).unwrap();
        let func = crate::count_triangles_in::<pim_sim::FunctionalBackend>(&g, &base).unwrap();
        assert_eq!(timed.estimate, func.estimate);
        assert_eq!(timed.dpu_reports, func.dpu_reports);
        assert!(timed.times.total() > 0.0);
        assert_eq!(func.times.total(), 0.0);
        assert_eq!(func.energy.total_j(), 0.0);
    }

    #[test]
    fn chunked_append_matches_unchunked() {
        // The streaming-memory tentpole: any route_chunk_edges gives the
        // same final result, because sampling is keyed by global granule.
        let g = gen::erdos_renyi(200, 0.15, 31);
        let expect = {
            let config = TcConfig {
                route_chunk_edges: u64::MAX / 2,
                ..tiny_config(3)
            };
            crate::count_triangles(&g, &config).unwrap()
        };
        for chunk in [1u64, 1000, 10_000] {
            let config = TcConfig {
                route_chunk_edges: chunk,
                ..tiny_config(3)
            };
            let r = crate::count_triangles(&g, &config).unwrap();
            assert_eq!(r.rounded(), expect.rounded(), "route_chunk_edges={chunk}");
            assert_eq!(r.edges_kept, expect.edges_kept);
            assert_eq!(r.dpu_reports, expect.dpu_reports);
        }
    }

    fn ckpt_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pimtc_dyn_ckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let g = gen::erdos_renyi(100, 0.15, 9);
        let mut pre = g.clone();
        pre.preprocess(3);
        let batches = pre.split_batches(4);
        let config = tiny_config(3);

        // Uninterrupted reference: every batch, counting after each.
        let mut full = TcSession::<RankCluster<TimedBackend>>::start_cluster(&config).unwrap();
        let mut want = None;
        for b in &batches {
            full.append(b).unwrap();
            want = Some(full.count().unwrap());
        }
        let want = want.unwrap();

        // Interrupted run: two batches, checkpoint, drop the session (the
        // process-kill stand-in — nothing survives but the file).
        let dir = ckpt_dir("resume");
        {
            let mut first = TcSession::<RankCluster<TimedBackend>>::start_cluster(&config).unwrap();
            for b in &batches[..2] {
                first.append(b).unwrap();
                first.count().unwrap();
            }
            first.checkpoint(2).unwrap().save(&dir).unwrap();
        }
        let snap = SessionCheckpoint::load(&dir).unwrap();
        assert_eq!(snap.watermark, 2);
        let mut resumed =
            TcSession::<RankCluster<TimedBackend>>::restore_cluster(&snap, None).unwrap();
        let mut got = None;
        for b in &batches[2..] {
            resumed.append(b).unwrap();
            got = Some(resumed.count().unwrap());
        }
        let got = got.unwrap();
        assert_eq!(got.estimate.to_bits(), want.estimate.to_bits());
        assert_eq!(got.dpu_reports, want.dpu_reports);
        assert_eq!(got.edges_kept, want.edges_kept);
        assert_eq!(got.edges_routed, want.edges_routed);
        assert_eq!(
            resumed.resident_samples().unwrap(),
            full.resident_samples().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_restore_covers_journals_and_misra_gries() {
        let mut g = gen::chung_lu(
            gen::chung_lu::ChungLuParams {
                n: 300,
                gamma: 2.1,
                avg_degree: 8.0,
                max_degree_frac: 0.4,
            },
            11,
        );
        g.preprocess(0);
        let batches = g.split_batches(3);
        let config = TcConfig::builder()
            .colors(3)
            .misra_gries(32, 8)
            .journal(true)
            .spare_dpus(2)
            .pim(PimConfig {
                total_dpus: 512,
                mram_capacity: 1 << 20,
                ..PimConfig::tiny()
            })
            .stage_edges(64)
            .build()
            .unwrap();

        let mut full = TcSession::<RankCluster<TimedBackend>>::start_cluster(&config).unwrap();
        let mut want = None;
        for b in &batches {
            full.append(b).unwrap();
            want = Some(full.count().unwrap());
        }
        let want = want.unwrap();

        let dir = ckpt_dir("journal_mg");
        {
            let mut first = TcSession::<RankCluster<TimedBackend>>::start_cluster(&config).unwrap();
            first.append(&batches[0]).unwrap();
            first.count().unwrap();
            first.checkpoint(1).unwrap().save(&dir).unwrap();
        }
        let snap = SessionCheckpoint::load(&dir).unwrap();
        assert!(snap.journals.is_some(), "journals must be checkpointed");
        assert!(snap.summary.is_some(), "summary must be checkpointed");
        let mut resumed =
            TcSession::<RankCluster<TimedBackend>>::restore_cluster(&snap, None).unwrap();
        // The restored banks must agree with the restored journals: a
        // scrub sweep (seal digests vs journal replay) finds nothing to
        // repair.
        let outcome = resumed.scrub().unwrap();
        assert_eq!(outcome.repaired, 0, "restored banks diverge from journals");
        let mut got = None;
        for b in &batches[1..] {
            resumed.append(b).unwrap();
            got = Some(resumed.count().unwrap());
        }
        let got = got.unwrap();
        assert_eq!(got.estimate.to_bits(), want.estimate.to_bits());
        assert_eq!(got.dpu_reports, want.dpu_reports);
        assert_eq!(
            resumed.resident_samples().unwrap(),
            full.resident_samples().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_refuses_a_snapshot_from_a_different_shape() {
        let g = gen::erdos_renyi(60, 0.2, 5);
        let mut s = TcSession::<RankCluster<TimedBackend>>::start_cluster(&tiny_config(3)).unwrap();
        s.append(g.edges()).unwrap();
        s.count().unwrap();
        let mut snap = s.checkpoint(1).unwrap();
        snap.config.colors = 2; // 4 partitions; the snapshot holds 10 banks.
        let Err(err) = TcSession::<RankCluster<TimedBackend>>::restore_cluster(&snap, None) else {
            panic!("mismatched snapshot must be refused");
        };
        assert!(matches!(err, TcError::Checkpoint(_)), "got {err:?}");
        assert!(err.to_string().contains("partition"), "got: {err}");
    }

    #[test]
    fn streaming_append_bounds_peak_host_memory() {
        // ~36k edges appended with a 1-granule chunk: the host must never
        // materialize more than one granule-rounded chunk's C-fold routed
        // keys, far below the full batch set.
        let g = gen::erdos_renyi(600, 0.2, 41);
        let colors = 3u64;
        let config = TcConfig {
            route_chunk_edges: 1,
            ..tiny_config(colors as u32)
        };
        let mut session = TcSession::start(&config).unwrap();
        session.append(g.edges()).unwrap();
        let bound = ROUTE_GRANULE_EDGES as u64 * colors * 8;
        assert!(session.peak_routed_bytes() > 0);
        assert!(
            session.peak_routed_bytes() <= bound,
            "peak {} exceeds chunk bound {bound}",
            session.peak_routed_bytes()
        );

        // An unbounded chunk materializes the whole batch set at once.
        let config = TcConfig {
            route_chunk_edges: u64::MAX / 2,
            ..tiny_config(colors as u32)
        };
        let mut whole = TcSession::start(&config).unwrap();
        whole.append(g.edges()).unwrap();
        assert_eq!(
            whole.peak_routed_bytes(),
            g.num_edges() as u64 * colors * 8,
            "unchunked run must hold every routed copy at once"
        );
        assert!(whole.peak_routed_bytes() > bound);
        assert_eq!(
            whole.count().unwrap().rounded(),
            session.count().unwrap().rounded()
        );
    }

    #[test]
    fn load_distribution_matches_1_3_6_classes() {
        let g = gen::erdos_renyi(300, 0.2, 21);
        let config = tiny_config(4);
        let mut session = TcSession::start(&config).unwrap();
        session.append(g.edges()).unwrap();
        let r = session.count().unwrap();
        // Average load per class should be ~N, ~3N, ~6N (§3.1).
        let mut class_tot = [0f64; 4];
        let mut class_n = [0f64; 4];
        for rep in &r.dpu_reports {
            let d = rep.triplet.distinct_colors() as usize;
            class_tot[d] += rep.seen as f64;
            class_n[d] += 1.0;
        }
        let n1 = class_tot[1] / class_n[1];
        let n2 = class_tot[2] / class_n[2];
        let n3 = class_tot[3] / class_n[3];
        assert!((n2 / n1 - 3.0).abs() < 0.8, "3N class: {}", n2 / n1);
        assert!((n3 / n1 - 6.0).abs() < 1.6, "6N class: {}", n3 / n1);
    }

    #[test]
    fn local_counting_matches_reference_across_colors() {
        let g = gen::erdos_renyi(90, 0.15, 17);
        let csr = pim_graph::CsrGraph::from_coo(&g);
        let expect = triangle::local_counts(&csr);
        for colors in [1u32, 2, 4] {
            let config = TcConfig::builder()
                .colors(colors)
                .local_counting(g.num_nodes())
                .pim(PimConfig {
                    total_dpus: 512,
                    mram_capacity: 1 << 20,
                    ..PimConfig::tiny()
                })
                .stage_edges(256)
                .build()
                .unwrap();
            let r = crate::count_triangles(&g, &config).unwrap();
            assert!(r.exact);
            let local = r.local_counts.as_ref().unwrap();
            assert_eq!(local.len(), g.num_nodes() as usize);
            for (node, (&got, &want)) in local.iter().zip(&expect).enumerate() {
                assert!(
                    (got - want as f64).abs() < 1e-6,
                    "C={colors} node {node}: got {got}, want {want}"
                );
            }
            // Global consistency: locals sum to 3x the global count.
            let sum: f64 = local.iter().sum();
            assert!((sum - 3.0 * r.estimate).abs() < 1e-6);
        }
    }

    #[test]
    fn local_counting_survives_incremental_updates() {
        let g = gen::erdos_renyi(60, 0.2, 23);
        let config = TcConfig::builder()
            .colors(2)
            .local_counting(g.num_nodes())
            .pim(PimConfig {
                total_dpus: 512,
                mram_capacity: 1 << 20,
                ..PimConfig::tiny()
            })
            .stage_edges(128)
            .build()
            .unwrap();
        let mut session = TcSession::start(&config).unwrap();
        let mut cumulative = CooGraph::new();
        for batch in g.split_batches(3) {
            session.append(&batch).unwrap();
            cumulative.extend_edges(&batch);
            let r = session.count().unwrap();
            let csr = pim_graph::CsrGraph::from_coo(&cumulative);
            let expect = triangle::local_counts(&csr);
            let local = r.local_counts.as_ref().unwrap();
            for (node, &want) in expect.iter().enumerate() {
                assert!(
                    (local[node] - want as f64).abs() < 1e-6,
                    "node {node} after {} edges",
                    cumulative.num_edges()
                );
            }
        }
    }

    #[test]
    fn profiled_run_labels_every_launch() {
        // Single-machine pin (like the Timed pin): the chrome-span closure
        // below sums spans from ONE trace, while a cluster merges phase
        // times as a per-rank max — cluster aggregates are pinned in
        // tests/cluster_equivalence.rs instead.
        let g = gen::simple::complete(15); // 455 triangles
        let config = TcConfig {
            backend: crate::config::ExecBackend::Timed,
            ranks: 1,
            ..tiny_config(2)
        };
        let profile = crate::count_triangles_profiled(&g, &config).unwrap();
        assert_eq!(profile.result.rounded(), 455);

        // Every pipeline kernel shows up as a labeled launch profile.
        let labels: HashSet<&str> = profile
            .report
            .launches
            .iter()
            .map(|l| l.label.as_str())
            .collect();
        for expected in ["receive", "sort", "index", "count"] {
            assert!(labels.contains(expected), "missing launch label {expected}");
        }
        // The host-side routing work is a named span too.
        assert!(profile.trace.events().iter().any(|e| matches!(
            e,
            pim_sim::TraceEvent::HostWork { label, .. } if label == "route_edges"
        )));

        // The Chrome export covers the entire modeled runtime: summed span
        // durations equal the phase-time total.
        let chrome = profile.trace.to_chrome_trace();
        let span_dur_us: f64 = chrome
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .map(|e| e.get("dur").unwrap().as_f64().unwrap())
            .sum();
        let total = profile.result.times.total();
        assert!(
            (span_dur_us / 1e6 - total).abs() < 1e-9,
            "chrome spans {span_dur_us} µs vs phase total {total} s"
        );
    }

    #[test]
    fn empty_graph_counts_zero() {
        let r = crate::count_triangles(&CooGraph::new(), &tiny_config(2)).unwrap();
        assert_eq!(r.rounded(), 0);
        assert!(r.exact);
    }

    #[test]
    fn init_write_digest_rejects_tampering() {
        let data: Vec<u8> = (0..32u8).collect();
        assert!(init_write_verifies(&data, &data.clone()));
        let mut tampered = data.clone();
        tampered[9] ^= 0x40;
        assert!(!init_write_verifies(&data, &tampered));
        // Length mismatch and non-word-aligned payloads are rejected
        // outright rather than hashed.
        assert!(!init_write_verifies(&data, &data[..24]));
        assert!(!init_write_verifies(&data[..7], &data[..7]));
    }

    #[test]
    fn metric_stream_aggregates_match_system_report() {
        use pim_metrics::{summarize, MemorySink, MetricsHub};

        let g = gen::erdos_renyi(120, 0.12, 7);
        for backend in [crate::ExecBackend::Timed, crate::ExecBackend::Functional] {
            let mut config = tiny_config(3);
            config.backend = backend;
            // Single-machine pin: the exact stream==report reconciliation
            // below assumes one machine's clock/alloc; the cluster's
            // max/sum merge is covered by tests/cluster_equivalence.rs.
            config.ranks = 1;
            let hub = Arc::new(MetricsHub::new());
            let sink = MemorySink::new();
            hub.add_sink(Box::new(sink.clone()));
            let profile =
                crate::count_triangles_profiled_metered(&g, &config, Some(Arc::clone(&hub)))
                    .unwrap();
            let summary = summarize(&sink.events());

            // The stream's aggregated counters reconcile exactly against
            // the backend's own lifetime accounting.
            assert_eq!(
                summary.transfer_bytes(),
                profile.report.total_transfer_bytes,
                "{backend:?}: transfer bytes"
            );
            assert_eq!(
                summary.instructions(),
                profile.report.total_instructions,
                "{backend:?}: instructions"
            );
            assert_eq!(
                summary.dma_bytes(),
                profile.report.total_dma_bytes,
                "{backend:?}: dma bytes"
            );
            assert_eq!(
                summary.total_faults(),
                profile.report.fault_counters.total(),
                "{backend:?}: faults"
            );
            assert_eq!(summary.nr_dpus as usize, profile.report.per_dpu.len());
            match backend {
                crate::ExecBackend::Timed => assert!(
                    (summary.total_seconds() - profile.result.times.total()).abs() < 1e-9,
                    "{backend:?}: stream seconds {} vs phase clock {}",
                    summary.total_seconds(),
                    profile.result.times.total()
                ),
                crate::ExecBackend::Functional => {
                    assert_eq!(summary.total_seconds(), 0.0)
                }
            }

            // Session-level observations rode along.
            assert!(summary.chunks > 0, "{backend:?}: chunk events");
            assert_eq!(summary.edges, g.edges().len() as u64);
            assert!(summary.reservoir_capacity > 0, "{backend:?}: reservoir");
        }
    }

    #[test]
    fn hardened_metered_run_streams_fault_and_retry_events() {
        use pim_metrics::{summarize, MemorySink, MetricsHub};
        use pim_sim::FaultPlan;

        let g = gen::erdos_renyi(120, 0.12, 11);
        let mut config = tiny_config(2);
        config.pim.fault = Some(FaultPlan::parse("seed=5,transfer=50000").unwrap());
        config.max_retries = 16;
        // Single-machine pin: one cluster-level retry can cover several
        // per-rank faults, so the retry==fault identity below only holds
        // at R = 1; rank-local fault confinement is property-tested in
        // tests/cluster_equivalence.rs.
        config.ranks = 1;
        let hub = Arc::new(MetricsHub::new());
        let sink = MemorySink::new();
        hub.add_sink(Box::new(sink.clone()));
        let profile =
            crate::count_triangles_profiled_metered(&g, &config, Some(Arc::clone(&hub))).unwrap();
        let summary = summarize(&sink.events());

        let counters = profile.report.fault_counters;
        assert!(counters.transfer_faults > 0, "plan should have fired");
        assert_eq!(
            summary.faults.get("transfer_fail").copied().unwrap_or(0),
            counters.transfer_faults
        );
        assert_eq!(summary.total_faults(), counters.total());
        // Every injected transfer fault was retried, and the retry labels
        // landed in the stream as `retry:<op>` host events.
        let retried: u64 = summary.retries.values().sum();
        assert_eq!(retried, counters.transfer_faults);
        // Failed transfer attempts are in the stream with ok=false, so
        // seconds still close against the phase clock.
        assert!(
            (summary.total_seconds() - profile.result.times.total()).abs() < 1e-9,
            "stream seconds {} vs phase clock {}",
            summary.total_seconds(),
            profile.result.times.total()
        );
    }

    /// The tentpole invariant, checked from inside the session: replaying
    /// a partition's journal re-derives its *live* bank exactly — sample
    /// contents and order, stream position, and the xorshift64* RNG state
    /// — through overflow, a count barrier (remap + sort), and further
    /// appends past it.
    #[test]
    fn journal_replay_rederives_live_banks_exactly() {
        let mut g = gen::erdos_renyi(120, 0.15, 7);
        g.preprocess(0);
        let batches = g.split_batches(3);
        let config = TcConfig::builder()
            .colors(3)
            .sample_capacity(24) // force reservoir overflow
            .misra_gries(64, 16) // force remap marks
            .hardened(true)
            .journal(true)
            .pim(PimConfig {
                total_dpus: 512,
                mram_capacity: 1 << 20,
                ..PimConfig::tiny()
            })
            .stage_edges(64)
            .build()
            .unwrap();
        let mut s = TcSession::start(&config).unwrap();
        let check = |s: &TcSession, at: &str| {
            let mut overflowed = 0;
            for t in 0..s.assignment.nr_dpus() {
                let bank = s.replay_partition(t);
                let home = s.partition_home[t];
                let hdr = Header::decode(&s.sys.dpu(home).unwrap().host_read(0, 64).unwrap());
                assert_eq!(bank.sample.len() as u64, hdr.len, "{at}: partition {t} len");
                assert_eq!(bank.seen, hdr.seen, "{at}: partition {t} seen");
                assert_eq!(bank.rng, hdr.rng, "{at}: partition {t} rng state");
                let bytes = s
                    .sys
                    .dpu(home)
                    .unwrap()
                    .host_read(s.layout.sample_off, hdr.len * 8)
                    .unwrap();
                assert_eq!(
                    bank.sample,
                    decode_slice::<u64>(&bytes),
                    "{at}: partition {t} sample"
                );
                if hdr.seen > hdr.cap {
                    overflowed += 1;
                }
            }
            overflowed
        };
        s.append(&batches[0]).unwrap();
        check(&s, "after first append");
        s.count().unwrap();
        check(&s, "after count");
        s.append(&batches[1]).unwrap();
        s.append(&batches[2]).unwrap();
        let overflowed = check(&s, "after appends past the count barrier");
        assert!(overflowed > 0, "capacity 24 must actually overflow");
        s.count().unwrap();
        check(&s, "after second count");
    }

    /// Inter-batch scrubbing finds a planted out-of-band corruption (the
    /// fault plan cannot schedule one) and repairs the bank in place from
    /// the journal; without journals the same sweep must fail loudly.
    #[test]
    fn scrub_repairs_planted_corruption_from_the_journal() {
        let g = gen::erdos_renyi(100, 0.15, 3);
        let build = |journal: bool| {
            TcConfig::builder()
                .colors(3)
                .hardened(true)
                .journal(journal)
                .pim(PimConfig {
                    total_dpus: 512,
                    mram_capacity: 1 << 20,
                    ..PimConfig::tiny()
                })
                .stage_edges(64)
                .build()
                .unwrap()
        };
        let mut s = TcSession::start(&build(true)).unwrap();
        s.append(g.edges()).unwrap();
        let clean = s.scrub().unwrap();
        assert_eq!(clean.repaired, 0);
        assert_eq!(clean.failed_over, 0);
        assert_eq!(clean.partitions, s.assignment.nr_dpus() as u64);

        // Flip one byte in partition 0's resident sample, out of band.
        let home = s.home_of(0);
        let off = s.layout.sample_off;
        let byte = s.sys.dpu(home).unwrap().host_read(off, 1).unwrap()[0];
        s.backend_mut()
            .dpu_mut(home)
            .unwrap()
            .host_write(off, &[byte ^ 0x40])
            .unwrap();
        let swept = s.scrub().unwrap();
        assert_eq!(swept.repaired, 1, "the corrupted bank must be repaired");
        let want = crate::count_triangles(&g, &tiny_config(3)).unwrap();
        let got = s.count().unwrap();
        assert_eq!(got.estimate.to_bits(), want.estimate.to_bits());

        // Journal-off: there is no ground truth to scrub against, so the
        // session refuses loudly rather than sweep blind.
        let mut s = TcSession::start(&build(false)).unwrap();
        s.append(g.edges()).unwrap();
        match s.scrub() {
            Err(TcError::Config(msg)) => {
                assert!(msg.contains("journal"), "got: {msg}")
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    /// `scrub()` is a hardened-pipeline facility; plain sessions reject it
    /// with a configuration error instead of silently doing nothing.
    #[test]
    fn scrub_rejects_plain_sessions() {
        let mut s = TcSession::start(&tiny_config(2)).unwrap();
        match s.scrub() {
            Err(TcError::Config(msg)) => assert!(msg.contains("hardened"), "got: {msg}"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }
}
