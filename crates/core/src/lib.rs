#![warn(missing_docs)]

//! `pim-tc` — Triangle Counting on a (simulated) real Processing-in-Memory
//! system.
//!
//! This crate implements the algorithm of *"Accelerating Triangle Counting
//! with Real Processing-in-Memory Systems"* (IPDPS 2025) on top of the
//! [`pim_sim`] UPMEM-like simulator:
//!
//! * [`triplets`] — the color-triplet partitioning that shards the edge
//!   stream across PIM cores with zero inter-core communication (§3.1),
//! * [`host`] — the host orchestrator: multi-threaded batch creation,
//!   optional uniform sampling and Misra-Gries tracking while reading the
//!   stream, and rank-parallel transfers (§3.1–§3.2, §3.5),
//! * [`kernel`] — the DPU-side kernels: reservoir-sampled edge receipt
//!   (§3.3), high-degree remapping (§3.5), bounded-WRAM merge sort, region
//!   indexing, and the merge-based counting kernel (§3.4),
//! * [`correction`] — the statistical corrections assembling per-core
//!   counts into the final (exact or estimated) triangle count,
//! * [`dynamic`] — incremental sessions for COO-format dynamic graphs
//!   (§4.6).
//!
//! # Quick start
//!
//! ```
//! use pim_graph::gen::simple;
//! use pim_tc::{count_triangles, TcConfig};
//!
//! let graph = simple::complete(20); // K20: 1140 triangles
//! let config = TcConfig::builder().colors(3).build().unwrap();
//! let result = count_triangles(&graph, &config).unwrap();
//! assert!(result.exact);
//! assert_eq!(result.estimate.round() as u64, 1140);
//! ```

pub mod checkpoint;
pub mod config;
pub mod correction;
pub mod dynamic;
pub mod error;
pub mod host;
pub mod kernel;
pub mod planner;
pub mod result;
pub mod triplets;

pub use checkpoint::{SessionCheckpoint, CHECKPOINT_FILE, CHECKPOINT_VERSION};
pub use config::{ExecBackend, MisraGriesConfig, TcConfig, TcConfigBuilder};
pub use dynamic::{ScrubOutcome, TcSession};
pub use error::{PimTcError, TcError};
pub use kernel::count::IntersectStrategy;
pub use planner::{
    auto_ranks, max_colors, min_ranks, plan_capacity, session_footprint, CapacityPlan,
    SessionFootprint,
};
pub use result::{DpuReport, TcResult};
pub use triplets::{ColorTriplet, TripletAssignment};

use pim_graph::CooGraph;
use pim_metrics::MetricsHub;
use pim_sim::{ClusterReport, FunctionalBackend, PimBackend, RankCluster, TimedBackend};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Counts (or estimates) the triangles of `graph` on the simulated PIM
/// system, end to end: allocation, coloring, batching, transfer, DPU
/// kernels, gathering, and statistical correction.
///
/// The run executes on the engine named by [`TcConfig::backend`]: the
/// timed simulator (modeled times, trace, energy) or the functional
/// engine (same counts, zero clocks). `result.exact` is true iff no
/// sampling affected the run (uniform sampling disabled *and* no
/// reservoir overflowed), in which case `result.estimate` equals the true
/// count exactly.
pub fn count_triangles(graph: &CooGraph, config: &TcConfig) -> Result<TcResult, TcError> {
    match config.backend {
        ExecBackend::Timed => count_triangles_in::<TimedBackend>(graph, config),
        ExecBackend::Functional => count_triangles_in::<FunctionalBackend>(graph, config),
    }
}

/// [`count_triangles`] on a caller-chosen execution engine, ignoring
/// [`TcConfig::backend`].
///
/// Runs through a [`RankCluster`] of `B` machines sharded over
/// [`TcConfig::ranks`]; at the default `ranks = 1` the cluster is a
/// verbatim pass-through, bit-identical to driving `B` directly (pinned
/// by the `cluster_equivalence` suite).
pub fn count_triangles_in<B: PimBackend>(
    graph: &CooGraph,
    config: &TcConfig,
) -> Result<TcResult, TcError> {
    let mut session = TcSession::<RankCluster<B>>::start_cluster(config)?;
    session.append(graph.edges())?;
    session.finish()
}

/// [`count_triangles`] with the per-rank breakdown: returns the counting
/// result next to a [`ClusterReport`] — one utilization report per rank
/// plus the cluster-wide merge (resources summed, phase times as the
/// elementwise maximum over the parallel ranks).
pub fn count_triangles_clustered(
    graph: &CooGraph,
    config: &TcConfig,
) -> Result<(TcResult, ClusterReport), TcError> {
    match config.backend {
        ExecBackend::Timed => count_triangles_clustered_in::<TimedBackend>(graph, config),
        ExecBackend::Functional => count_triangles_clustered_in::<FunctionalBackend>(graph, config),
    }
}

/// [`count_triangles_clustered`] on a caller-chosen execution engine.
pub fn count_triangles_clustered_in<B: PimBackend>(
    graph: &CooGraph,
    config: &TcConfig,
) -> Result<(TcResult, ClusterReport), TcError> {
    let mut session = TcSession::<RankCluster<B>>::start_cluster(config)?;
    session.append(graph.edges())?;
    let result = session.count()?;
    let report = session.cluster_report();
    Ok((result, report))
}

/// Everything a profiled run produces: the counting result plus the full
/// observability capture (see `docs/OBSERVABILITY.md`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunProfile {
    /// The counting result, identical to [`count_triangles`]'s.
    pub result: TcResult,
    /// The labeled event timeline; export with
    /// [`pim_sim::Trace::to_chrome_trace`] for `chrome://tracing`.
    pub trace: pim_sim::Trace,
    /// Per-DPU attribution: activity counters, per-launch cycle
    /// distributions, and transfer-bandwidth utilization.
    pub report: pim_sim::SystemReport,
    /// Each rank's own timeline in rank order. At `ranks = 1` this is a
    /// single trace identical to [`RunProfile::trace`]; at R>1 feed it to
    /// [`pim_sim::to_chrome_trace_cluster`] for per-rank process groups.
    pub rank_traces: Vec<pim_sim::Trace>,
}

/// Like [`count_triangles`], but runs with tracing enabled and returns
/// the event timeline and per-DPU attribution next to the result.
///
/// On the functional backend the result and activity counters are
/// identical, but the trace is empty and every time/energy figure is
/// zero — that engine produces no timing events.
pub fn count_triangles_profiled(
    graph: &CooGraph,
    config: &TcConfig,
) -> Result<RunProfile, TcError> {
    match config.backend {
        ExecBackend::Timed => count_triangles_profiled_in::<TimedBackend>(graph, config),
        ExecBackend::Functional => count_triangles_profiled_in::<FunctionalBackend>(graph, config),
    }
}

/// [`count_triangles_profiled`] on a caller-chosen execution engine,
/// ignoring [`TcConfig::backend`].
pub fn count_triangles_profiled_in<B: PimBackend>(
    graph: &CooGraph,
    config: &TcConfig,
) -> Result<RunProfile, TcError> {
    count_triangles_profiled_metered_in::<B>(graph, config, None)
}

/// Like [`count_triangles`], with a live [`MetricsHub`] attached before
/// the first bank is touched: every transfer, launch, fault, and chunk of
/// the run is emitted on the hub as it happens (see
/// `docs/OBSERVABILITY.md` for the event schema).
pub fn count_triangles_metered(
    graph: &CooGraph,
    config: &TcConfig,
    hub: Arc<MetricsHub>,
) -> Result<TcResult, TcError> {
    match config.backend {
        ExecBackend::Timed => count_triangles_metered_in::<TimedBackend>(graph, config, hub),
        ExecBackend::Functional => {
            count_triangles_metered_in::<FunctionalBackend>(graph, config, hub)
        }
    }
}

/// [`count_triangles_metered`] on a caller-chosen execution engine.
pub fn count_triangles_metered_in<B: PimBackend>(
    graph: &CooGraph,
    config: &TcConfig,
    hub: Arc<MetricsHub>,
) -> Result<TcResult, TcError> {
    let mut session = TcSession::<RankCluster<B>>::start_cluster_metered(config, Some(hub))?;
    session.append(graph.edges())?;
    session.finish()
}

/// [`count_triangles_profiled`] with an optional live [`MetricsHub`]:
/// the full observability capture (trace + report) plus, when a hub is
/// given, the structured event stream and registry populated live.
pub fn count_triangles_profiled_metered(
    graph: &CooGraph,
    config: &TcConfig,
    hub: Option<Arc<MetricsHub>>,
) -> Result<RunProfile, TcError> {
    match config.backend {
        ExecBackend::Timed => {
            count_triangles_profiled_metered_in::<TimedBackend>(graph, config, hub)
        }
        ExecBackend::Functional => {
            count_triangles_profiled_metered_in::<FunctionalBackend>(graph, config, hub)
        }
    }
}

/// [`count_triangles_profiled_metered`] on a caller-chosen execution
/// engine.
pub fn count_triangles_profiled_metered_in<B: PimBackend>(
    graph: &CooGraph,
    config: &TcConfig,
    hub: Option<Arc<MetricsHub>>,
) -> Result<RunProfile, TcError> {
    let mut session = TcSession::<RankCluster<B>>::start_cluster_metered(config, hub)?;
    session.enable_tracing();
    session.append(graph.edges())?;
    let result = session.count()?;
    let trace = session.trace().clone();
    let report = session.system_report();
    let rank_traces = session.rank_traces();
    Ok(RunProfile {
        result,
        trace,
        report,
        rank_traces,
    })
}
