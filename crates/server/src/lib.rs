//! Multi-tenant serving layer for the PIM triangle-counting engine.
//!
//! This crate implements the `pimtc serve` daemon: a dependency-free
//! TCP server (std `TcpListener` + worker threads, in the mold of
//! `pim_metrics::MetricsServer`) that owns one simulated PIM cluster and
//! multiplexes concurrent tenant sessions over it.
//!
//! The pieces:
//!
//! * [`protocol`] — the line-delimited JSON wire format (`create-session`,
//!   `append-edges`, `query-count`, `checkpoint`, `close`, plus `ping`,
//!   `stats`, `shutdown`) and its structured error codes;
//! * [`scheduler`] — the [`scheduler::LeaseLedger`], which leases disjoint
//!   per-rank DPU blocks to tenants and can audit its own disjointness
//!   invariant;
//! * [`admission`] — the [`admission::AdmissionController`], which sizes a
//!   session via `pim_tc::planner::session_footprint` and rejects anything
//!   that does not fit the machine, naming the binding limit;
//! * [`serve`] — the [`serve::Server`] itself: accept loop, per-session
//!   serialized op queues under a global fair-share worker pool,
//!   HTTP `/metrics` + per-session `/healthz` on the same listener, and
//!   graceful drain that checkpoints every live session (`PIMTCKPT`).
//!
//! See `docs/SERVING.md` for the protocol grammar and operational notes.

#![warn(missing_docs)]

pub mod admission;
pub mod protocol;
pub mod scheduler;
pub mod serve;

pub use admission::{AdmissionController, Rejection};
pub use protocol::{
    error_response, ok_response, parse_request, ErrorCode, Request, SessionSpec, DEFAULT_MAX_FRAME,
};
pub use scheduler::{Lease, LeaseLedger};
pub use serve::{DrainReport, ServeConfig, Server};
