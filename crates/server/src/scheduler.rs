//! The partition scheduler: leasing disjoint DPU ranges to tenants.
//!
//! The daemon models the physical machine as `R` ranks of `D` cores each.
//! Every admitted session claims one contiguous block of cores on each of
//! the ranks it shards over (`per_rank_dpus` from the session's
//! [`pim_tc::planner::SessionFootprint`]); the [`LeaseLedger`] hands those
//! blocks out first-fit from the least-loaded ranks and guarantees — and
//! can audit, via [`LeaseLedger::check_invariants`] — that no two tenants
//! ever overlap on a core.

use serde::{Deserialize, Serialize};

/// One contiguous block of cores on one rank, leased to one session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// The tenant holding the block.
    pub session: u64,
    /// Physical rank index in `[0, nr_ranks)`.
    pub rank: u32,
    /// First core of the block (rank-local index).
    pub start: usize,
    /// Cores in the block.
    pub len: usize,
}

impl Lease {
    /// One past the last core of the block.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Per-rank interval ledger of every outstanding lease.
#[derive(Clone, Debug)]
pub struct LeaseLedger {
    /// Outstanding leases per rank, kept sorted by `start`.
    ranks: Vec<Vec<Lease>>,
    /// Cores per rank.
    rank_dpus: usize,
}

impl LeaseLedger {
    /// An empty ledger for `nr_ranks` ranks of `rank_dpus` cores each.
    pub fn new(nr_ranks: u32, rank_dpus: usize) -> LeaseLedger {
        LeaseLedger {
            ranks: vec![Vec::new(); nr_ranks.max(1) as usize],
            rank_dpus,
        }
    }

    /// Ranks in the machine.
    pub fn nr_ranks(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// Cores per rank.
    pub fn rank_dpus(&self) -> usize {
        self.rank_dpus
    }

    /// Total cores across all ranks.
    pub fn total_dpus(&self) -> usize {
        self.ranks.len() * self.rank_dpus
    }

    /// Cores currently leased out.
    pub fn leased_dpus(&self) -> usize {
        self.ranks
            .iter()
            .flat_map(|r| r.iter())
            .map(|l| l.len)
            .sum()
    }

    /// True when no leases are outstanding.
    pub fn is_empty(&self) -> bool {
        self.ranks.iter().all(Vec::is_empty)
    }

    /// Largest contiguous free block on rank `rank`.
    fn largest_gap(&self, rank: usize) -> usize {
        let mut cursor = 0usize;
        let mut best = 0usize;
        for lease in &self.ranks[rank] {
            best = best.max(lease.start.saturating_sub(cursor));
            cursor = cursor.max(lease.end());
        }
        best.max(self.rank_dpus.saturating_sub(cursor))
    }

    /// First-fit start offset for a block of `len` cores on rank `rank`,
    /// or `None` when no gap is large enough.
    fn first_fit(&self, rank: usize, len: usize) -> Option<usize> {
        let mut cursor = 0usize;
        for lease in &self.ranks[rank] {
            if lease.start.saturating_sub(cursor) >= len {
                return Some(cursor);
            }
            cursor = cursor.max(lease.end());
        }
        if self.rank_dpus.saturating_sub(cursor) >= len {
            Some(cursor)
        } else {
            None
        }
    }

    /// Leases one block of `per_rank` cores on each of `ranks_wanted`
    /// distinct ranks to `session`. Blocks land on the ranks with the
    /// largest free gaps (ties to the lower rank index, so placement is
    /// deterministic). Returns `None` — and changes nothing — when fewer
    /// than `ranks_wanted` ranks have a gap that large.
    pub fn try_lease(
        &mut self,
        session: u64,
        ranks_wanted: u32,
        per_rank: usize,
    ) -> Option<Vec<Lease>> {
        if ranks_wanted == 0 || per_rank == 0 || ranks_wanted as usize > self.ranks.len() {
            return None;
        }
        let mut candidates: Vec<(usize, usize)> = (0..self.ranks.len())
            .map(|r| (r, self.largest_gap(r)))
            .filter(|&(_, gap)| gap >= per_rank)
            .collect();
        if candidates.len() < ranks_wanted as usize {
            return None;
        }
        // Most-free ranks first; lower index on ties.
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut granted = Vec::with_capacity(ranks_wanted as usize);
        for &(rank, _) in candidates.iter().take(ranks_wanted as usize) {
            let start = self
                .first_fit(rank, per_rank)
                .expect("gap-filtered rank must fit");
            let lease = Lease {
                session,
                rank: rank as u32,
                start,
                len: per_rank,
            };
            let pos = self.ranks[rank]
                .iter()
                .position(|l| l.start > start)
                .unwrap_or(self.ranks[rank].len());
            self.ranks[rank].insert(pos, lease);
            granted.push(lease);
        }
        granted.sort_by_key(|l| l.rank);
        Some(granted)
    }

    /// Releases every lease `session` holds; returns how many cores came
    /// back.
    pub fn release(&mut self, session: u64) -> usize {
        let mut freed = 0;
        for rank in &mut self.ranks {
            rank.retain(|l| {
                if l.session == session {
                    freed += l.len;
                    false
                } else {
                    true
                }
            });
        }
        freed
    }

    /// Every outstanding lease, rank-major then start-ordered.
    pub fn snapshot(&self) -> Vec<Lease> {
        self.ranks.iter().flat_map(|r| r.iter().copied()).collect()
    }

    /// Audits the ledger: every lease in bounds, non-empty, and disjoint
    /// from its rank neighbors. The concurrency stress test calls this
    /// after every admission mix.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (rank, leases) in self.ranks.iter().enumerate() {
            let mut prev_end = 0usize;
            let mut prev: Option<&Lease> = None;
            for lease in leases {
                if lease.len == 0 {
                    return Err(format!("rank {rank}: empty lease for {}", lease.session));
                }
                if lease.end() > self.rank_dpus {
                    return Err(format!(
                        "rank {rank}: lease {:?} exceeds the {}–core rank",
                        lease, self.rank_dpus
                    ));
                }
                if lease.start < prev_end {
                    return Err(format!(
                        "rank {rank}: lease {:?} overlaps {:?}",
                        lease,
                        prev.expect("overlap implies a predecessor")
                    ));
                }
                prev_end = lease.end();
                prev = Some(lease);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_disjoint_and_deterministic() {
        let mut ledger = LeaseLedger::new(2, 10);
        let a = ledger.try_lease(1, 2, 4).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!((a[0].rank, a[0].start), (0, 0));
        assert_eq!((a[1].rank, a[1].start), (1, 0));
        let b = ledger.try_lease(2, 1, 6).unwrap();
        assert_eq!((b[0].rank, b[0].start, b[0].len), (0, 4, 6));
        ledger.check_invariants().unwrap();
        assert_eq!(ledger.leased_dpus(), 14);
        // Rank 0 is full; a 5-core two-rank ask cannot be satisfied.
        assert!(ledger.try_lease(3, 2, 5).is_none());
        // ...but a one-rank ask fits on rank 1.
        let c = ledger.try_lease(3, 1, 5).unwrap();
        assert_eq!((c[0].rank, c[0].start), (1, 4));
        ledger.check_invariants().unwrap();
    }

    #[test]
    fn release_reopens_gaps_and_empties_the_ledger() {
        let mut ledger = LeaseLedger::new(1, 8);
        ledger.try_lease(1, 1, 3).unwrap();
        ledger.try_lease(2, 1, 3).unwrap();
        assert!(ledger.try_lease(3, 1, 3).is_none());
        assert_eq!(ledger.release(1), 3);
        // The freed block in front is reused first-fit.
        let c = ledger.try_lease(3, 1, 3).unwrap();
        assert_eq!(c[0].start, 0);
        ledger.check_invariants().unwrap();
        ledger.release(2);
        ledger.release(3);
        assert!(ledger.is_empty());
        assert_eq!(ledger.leased_dpus(), 0);
    }

    #[test]
    fn failed_leases_change_nothing() {
        let mut ledger = LeaseLedger::new(2, 4);
        ledger.try_lease(1, 1, 3).unwrap();
        let before = ledger.snapshot();
        assert!(ledger.try_lease(2, 2, 3).is_none());
        assert!(ledger.try_lease(2, 3, 1).is_none());
        assert!(ledger.try_lease(2, 1, 0).is_none());
        assert_eq!(ledger.snapshot(), before);
    }
}
