//! The wire protocol `pimtc serve` speaks: line-delimited JSON frames.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Requests carry an `"op"` discriminator; the
//! verbs are `ping`, `create-session`, `append-edges`, `query-count`,
//! `checkpoint`, `close`, `stats`, and `shutdown`. Responses always carry
//! `"ok"` — `true` with op-specific payload fields, or `false` with an
//! `"error": {"code", "message"}` object whose code is one of
//! [`ErrorCode`]'s stable strings. The full grammar, with examples, lives
//! in `docs/SERVING.md`.
//!
//! Frames are bounded: a request line longer than the server's configured
//! maximum (default [`DEFAULT_MAX_FRAME`]) is answered with a
//! `frame-too-large` error and the connection is closed — the remainder
//! of the oversized line cannot be resynchronized safely.

use pim_graph::Edge;
use serde_json::Value;

/// Default cap on one request line, bytes (1 MiB ≈ 65k edges per append).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Stable error codes carried in `{"error":{"code":...}}` responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame parsed as JSON but the request is malformed: missing or
    /// ill-typed fields, or not a JSON object at all.
    BadRequest,
    /// The `"op"` discriminator names no known verb.
    UnknownOp,
    /// The `"session"` id names no live session.
    UnknownSession,
    /// The session was already closed (double-close lands here too).
    SessionClosed,
    /// The admission controller rejected the session; the message names
    /// the binding limit (`dpus`, `ranks`, `mram`, or `config`).
    Admission,
    /// The request line exceeded the frame cap; the connection closes.
    FrameTooLarge,
    /// An operation failed on the simulated hardware past its retry
    /// budget (the session survives; the op does not).
    Faulted,
    /// A checkpoint could not be captured or persisted.
    Checkpoint,
    /// The server is draining: no new sessions or ops are accepted.
    Draining,
}

impl ErrorCode {
    /// The stable wire string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::SessionClosed => "session-closed",
            ErrorCode::Admission => "admission",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::Faulted => "faulted",
            ErrorCode::Checkpoint => "checkpoint",
            ErrorCode::Draining => "draining",
        }
    }
}

/// Parameters of a `create-session` request, straight off the wire.
/// Everything except `colors` is optional; the server resolves the rest
/// to the same defaults `TcConfig::builder()` uses and echoes the fully
/// resolved configuration back, so clients can reproduce the session
/// exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionSpec {
    /// Color count `C` (required — it fixes the partition footprint).
    pub colors: u32,
    /// RNG seed; defaults to the builder's golden-ratio constant.
    pub seed: Option<u64>,
    /// Host-level uniform keep-probability.
    pub uniform_p: Option<f64>,
    /// Per-core reservoir capacity `M`.
    pub capacity: Option<u64>,
    /// Misra-Gries heavy-hitter parameters `(k, t)`.
    pub misra_gries: Option<(usize, usize)>,
    /// Ranks to shard the triplet grid over.
    pub ranks: Option<u32>,
    /// Spare cores per rank for failover.
    pub spares: Option<u32>,
    /// Keep replayable per-partition RNG journals.
    pub journal: Option<bool>,
    /// Execution engine: `"timed"` or `"functional"`.
    pub backend: Option<String>,
    /// Fault-injection spec (the `--faults` grammar).
    pub faults: Option<String>,
}

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; echoes `{"ok":true,"op":"ping"}`.
    Ping,
    /// Admit a new tenant and start its session.
    CreateSession(SessionSpec),
    /// Append a batch of edges to a session's stream.
    AppendEdges {
        /// Target session id.
        session: u64,
        /// The batch, as offered (dedup happens server-side).
        edges: Vec<Edge>,
    },
    /// Run the counting pipeline on the resident samples.
    QueryCount {
        /// Target session id.
        session: u64,
    },
    /// Persist a `PIMTCKPT` snapshot of the session.
    Checkpoint {
        /// Target session id.
        session: u64,
        /// Destination directory; defaults to the server's drain dir.
        dir: Option<String>,
    },
    /// Tear the session down and release its DPU leases.
    Close {
        /// Target session id.
        session: u64,
    },
    /// Server-wide counters: sessions, admissions, leases.
    Stats,
    /// Begin a graceful drain (same path as SIGTERM).
    Shutdown,
}

/// Parses one request line. Errors come back as `(code, message)` pairs
/// ready to serialize with [`error_response`].
pub fn parse_request(line: &str) -> Result<Request, (ErrorCode, String)> {
    let value: Value = serde_json::from_str(line.trim())
        .map_err(|e| (ErrorCode::BadRequest, format!("not valid JSON: {e}")))?;
    if value.as_object().is_none() {
        return Err((
            ErrorCode::BadRequest,
            format!("expected a JSON object, got {}", value.kind()),
        ));
    }
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| (ErrorCode::BadRequest, "missing string field \"op\"".into()))?;
    match op {
        "ping" => Ok(Request::Ping),
        "create-session" => Ok(Request::CreateSession(parse_session_spec(&value)?)),
        "append-edges" => {
            let session = session_id(&value)?;
            let edges = parse_edges(&value)?;
            Ok(Request::AppendEdges { session, edges })
        }
        "query-count" => Ok(Request::QueryCount {
            session: session_id(&value)?,
        }),
        "checkpoint" => Ok(Request::Checkpoint {
            session: session_id(&value)?,
            dir: value.get("dir").and_then(Value::as_str).map(str::to_string),
        }),
        "close" => Ok(Request::Close {
            session: session_id(&value)?,
        }),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err((ErrorCode::UnknownOp, format!("unknown op {other:?}"))),
    }
}

fn session_id(value: &Value) -> Result<u64, (ErrorCode, String)> {
    value.get("session").and_then(Value::as_u64).ok_or_else(|| {
        (
            ErrorCode::BadRequest,
            "missing or non-integer field \"session\"".into(),
        )
    })
}

fn parse_session_spec(value: &Value) -> Result<SessionSpec, (ErrorCode, String)> {
    let bad = |msg: &str| (ErrorCode::BadRequest, msg.to_string());
    let colors = value
        .get("colors")
        .and_then(Value::as_u64)
        .ok_or_else(|| bad("create-session requires an integer \"colors\""))?;
    if colors == 0 || colors > u32::MAX as u64 {
        return Err(bad("\"colors\" must be in [1, 2^32)"));
    }
    let misra_gries = match value.get("misra_gries") {
        None => None,
        Some(mg) => {
            let arr = mg
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| bad("\"misra_gries\" must be a [k, t] pair"))?;
            let k = arr[0]
                .as_u64()
                .ok_or_else(|| bad("\"misra_gries\" k must be an integer"))?;
            let t = arr[1]
                .as_u64()
                .ok_or_else(|| bad("\"misra_gries\" t must be an integer"))?;
            Some((k as usize, t as usize))
        }
    };
    let typed_u64 = |name: &str| -> Result<Option<u64>, (ErrorCode, String)> {
        match value.get(name) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| bad(&format!("\"{name}\" must be a non-negative integer"))),
        }
    };
    let uniform_p = match value.get("uniform_p") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| bad("\"uniform_p\" must be a number"))?,
        ),
    };
    let typed_str = |name: &str| -> Result<Option<String>, (ErrorCode, String)> {
        match value.get(name) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| bad(&format!("\"{name}\" must be a string"))),
        }
    };
    Ok(SessionSpec {
        colors: colors as u32,
        seed: typed_u64("seed")?,
        uniform_p,
        capacity: typed_u64("capacity")?,
        misra_gries,
        ranks: typed_u64("ranks")?.map(|r| r as u32),
        spares: typed_u64("spares")?.map(|s| s as u32),
        journal: value.get("journal").map(|v| v.as_bool().unwrap_or(false)),
        backend: typed_str("backend")?,
        faults: typed_str("faults")?,
    })
}

fn parse_edges(value: &Value) -> Result<Vec<Edge>, (ErrorCode, String)> {
    let bad = |msg: String| (ErrorCode::BadRequest, msg);
    let arr = value
        .get("edges")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("append-edges requires an \"edges\" array".into()))?;
    let mut edges = Vec::with_capacity(arr.len());
    for (i, e) in arr.iter().enumerate() {
        let pair = e
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| bad(format!("edge {i} is not a [u, v] pair")))?;
        let u = pair[0]
            .as_u64()
            .filter(|&n| n <= u32::MAX as u64)
            .ok_or_else(|| bad(format!("edge {i}: u is not a u32")))?;
        let v = pair[1]
            .as_u64()
            .filter(|&n| n <= u32::MAX as u64)
            .ok_or_else(|| bad(format!("edge {i}: v is not a u32")))?;
        edges.push(Edge::new(u as u32, v as u32));
    }
    Ok(edges)
}

/// Escapes `s` into a JSON string literal (appended to `out` with
/// surrounding quotes).
pub fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one `{"ok":false,...}` error frame (no trailing newline).
pub fn error_response(code: ErrorCode, message: &str) -> String {
    let mut out = String::with_capacity(64 + message.len());
    out.push_str("{\"ok\":false,\"error\":{\"code\":");
    push_json_string(code.as_str(), &mut out);
    out.push_str(",\"message\":");
    push_json_string(message, &mut out);
    out.push_str("}}");
    out
}

/// Renders one `{"ok":true,"op":...}` frame with pre-rendered extra
/// fields (each `fields` entry is a `"key":value` fragment).
pub fn ok_response(op: &str, fields: &[String]) -> String {
    let mut out = String::with_capacity(32);
    out.push_str("{\"ok\":true,\"op\":");
    push_json_string(op, &mut out);
    for f in fields {
        out.push(',');
        out.push_str(f);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(parse_request("{\"op\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            parse_request(" {\"op\":\"stats\"} ").unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        let create = parse_request(
            "{\"op\":\"create-session\",\"colors\":3,\"seed\":7,\"ranks\":2,\
             \"misra_gries\":[64,16],\"backend\":\"functional\"}",
        )
        .unwrap();
        match create {
            Request::CreateSession(spec) => {
                assert_eq!(spec.colors, 3);
                assert_eq!(spec.seed, Some(7));
                assert_eq!(spec.ranks, Some(2));
                assert_eq!(spec.misra_gries, Some((64, 16)));
                assert_eq!(spec.backend.as_deref(), Some("functional"));
                assert_eq!(spec.capacity, None);
            }
            other => panic!("parsed {other:?}"),
        }
        let append =
            parse_request("{\"op\":\"append-edges\",\"session\":4,\"edges\":[[1,2],[3,4]]}")
                .unwrap();
        assert_eq!(
            append,
            Request::AppendEdges {
                session: 4,
                edges: vec![Edge::new(1, 2), Edge::new(3, 4)],
            }
        );
        assert_eq!(
            parse_request("{\"op\":\"query-count\",\"session\":9}").unwrap(),
            Request::QueryCount { session: 9 }
        );
        assert_eq!(
            parse_request("{\"op\":\"checkpoint\",\"session\":9,\"dir\":\"/tmp/x\"}").unwrap(),
            Request::Checkpoint {
                session: 9,
                dir: Some("/tmp/x".into())
            }
        );
        assert_eq!(
            parse_request("{\"op\":\"close\",\"session\":1}").unwrap(),
            Request::Close { session: 1 }
        );
    }

    #[test]
    fn malformed_frames_are_structured_errors() {
        for (line, want) in [
            ("not json", ErrorCode::BadRequest),
            ("[1,2,3]", ErrorCode::BadRequest),
            ("{\"no\":\"op\"}", ErrorCode::BadRequest),
            ("{\"op\":\"warp\"}", ErrorCode::UnknownOp),
            ("{\"op\":\"append-edges\"}", ErrorCode::BadRequest),
            (
                "{\"op\":\"append-edges\",\"session\":1,\"edges\":[[1]]}",
                ErrorCode::BadRequest,
            ),
            (
                "{\"op\":\"append-edges\",\"session\":1,\"edges\":[[1,99999999999]]}",
                ErrorCode::BadRequest,
            ),
            ("{\"op\":\"create-session\"}", ErrorCode::BadRequest),
            (
                "{\"op\":\"create-session\",\"colors\":0}",
                ErrorCode::BadRequest,
            ),
            (
                "{\"op\":\"create-session\",\"colors\":2,\"misra_gries\":[1]}",
                ErrorCode::BadRequest,
            ),
            ("{\"op\":\"close\"}", ErrorCode::BadRequest),
        ] {
            let (code, msg) = parse_request(line).unwrap_err();
            assert_eq!(code, want, "line {line:?} → {msg}");
            // The error frame itself must be valid JSON.
            let rendered = error_response(code, &msg);
            let parsed: Value = serde_json::from_str(&rendered).unwrap();
            assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(false));
            assert_eq!(
                parsed
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Value::as_str),
                Some(code.as_str())
            );
        }
    }

    #[test]
    fn responses_render_valid_json() {
        let ok = ok_response("ping", &["\"session\":3".into()]);
        let parsed: Value = serde_json::from_str(&ok).unwrap();
        assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(parsed.get("session").and_then(Value::as_u64), Some(3));
        let err = error_response(ErrorCode::FrameTooLarge, "line \"quoted\"\npast cap");
        let parsed: Value = serde_json::from_str(&err).unwrap();
        assert!(parsed
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Value::as_str)
            .unwrap()
            .contains("quoted"));
    }
}
