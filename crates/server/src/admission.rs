//! Admission control: does this session fit the machine the daemon owns?
//!
//! A `create-session` request resolves to a full `TcConfig`; the
//! [`AdmissionController`] turns that into a
//! [`pim_tc::planner::SessionFootprint`] (partitions, ranks, spares,
//! cores per rank, MRAM layout) and checks it against the cluster budget:
//!
//! 1. the MRAM layout must be feasible per bank (the same arithmetic
//!    `plan_capacity` and `TcConfig::validate` use) — binding limit
//!    `mram`;
//! 2. the session's rank spread must fit the machine's rank count —
//!    binding limit `ranks`;
//! 3. a contiguous block of `per_rank_dpus` cores must be free on that
//!    many ranks of the [`LeaseLedger`] — binding limit `dpus`.
//!
//! Rejections always name the binding limit, so a load generator (or an
//! operator) can tell "shrink C" apart from "add ranks".

use crate::scheduler::{Lease, LeaseLedger};
use pim_tc::planner::{session_footprint, SessionFootprint};
use pim_tc::{TcConfig, TcError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a session was turned away. `limit` is one of `"mram"`, `"ranks"`,
/// `"dpus"`, or `"config"`; `message` spells out the arithmetic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// The binding limit.
    pub limit: &'static str,
    /// Human-readable detail naming the numbers involved.
    pub message: String,
}

impl Rejection {
    /// Formats the rejection for a protocol error message.
    pub fn to_message(&self) -> String {
        format!("rejected ({} limit): {}", self.limit, self.message)
    }
}

/// The admission controller: a lease ledger plus admit/reject counters.
pub struct AdmissionController {
    ledger: Mutex<LeaseLedger>,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

impl AdmissionController {
    /// A controller for `nr_ranks` ranks of `rank_dpus` cores each.
    pub fn new(nr_ranks: u32, rank_dpus: usize) -> AdmissionController {
        AdmissionController {
            ledger: Mutex::new(LeaseLedger::new(nr_ranks, rank_dpus)),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Sessions admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Sessions rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Cores currently leased out.
    pub fn leased_dpus(&self) -> usize {
        self.ledger.lock().expect("ledger poisoned").leased_dpus()
    }

    /// Total cores in the machine.
    pub fn total_dpus(&self) -> usize {
        self.ledger.lock().expect("ledger poisoned").total_dpus()
    }

    /// True when no leases are outstanding.
    pub fn ledger_is_empty(&self) -> bool {
        self.ledger.lock().expect("ledger poisoned").is_empty()
    }

    /// Every outstanding lease.
    pub fn leases(&self) -> Vec<Lease> {
        self.ledger.lock().expect("ledger poisoned").snapshot()
    }

    /// Audits the ledger's disjointness invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.ledger
            .lock()
            .expect("ledger poisoned")
            .check_invariants()
    }

    /// Admits `session` under `config`, leasing its cores, or rejects it
    /// naming the binding limit. On success the returned footprint's
    /// `per_rank_dpus` is exactly what each granted lease spans.
    pub fn admit(
        &self,
        session: u64,
        config: &TcConfig,
    ) -> Result<(SessionFootprint, Vec<Lease>), Rejection> {
        let footprint = session_footprint(config).map_err(|e| {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            classify_config_error(&e)
        })?;
        let mut ledger = self.ledger.lock().expect("ledger poisoned");
        if footprint.ranks > ledger.nr_ranks() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection {
                limit: "ranks",
                message: format!(
                    "session shards over {} ranks but the cluster has {}",
                    footprint.ranks,
                    ledger.nr_ranks()
                ),
            });
        }
        if footprint.per_rank_dpus > ledger.rank_dpus() as u64 {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection {
                limit: "dpus",
                message: format!(
                    "session needs {} cores per rank ({} partitions / {} ranks + {} spares) \
                     but each rank has {}",
                    footprint.per_rank_dpus,
                    footprint.partitions,
                    footprint.ranks,
                    footprint.spares,
                    ledger.rank_dpus()
                ),
            });
        }
        match ledger.try_lease(session, footprint.ranks, footprint.per_rank_dpus as usize) {
            Some(leases) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                Ok((footprint, leases))
            }
            None => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(Rejection {
                    limit: "dpus",
                    message: format!(
                        "no {} contiguous free cores on {} ranks ({} of {} cores leased out)",
                        footprint.per_rank_dpus,
                        footprint.ranks,
                        ledger.leased_dpus(),
                        ledger.total_dpus()
                    ),
                })
            }
        }
    }

    /// Releases every lease `session` holds; returns freed cores.
    pub fn release(&self, session: u64) -> usize {
        self.ledger
            .lock()
            .expect("ledger poisoned")
            .release(session)
    }
}

/// Maps a footprint error to its binding limit: MRAM-layout failures
/// (bank too small, capacity over the bank maximum) are `mram`; anything
/// else is a plain `config` rejection.
fn classify_config_error(e: &TcError) -> Rejection {
    let message = e.to_string();
    let limit = if message.contains("MRAM") || message.contains("bank") {
        "mram"
    } else {
        "config"
    };
    Rejection { limit, message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::PimConfig;

    fn config(colors: u32, ranks: u32) -> TcConfig {
        TcConfig::builder()
            .colors(colors)
            .ranks(ranks)
            .pim(PimConfig::tiny())
            .build()
            .unwrap()
    }

    #[test]
    fn admits_until_cores_run_out_then_names_the_limit() {
        // 1 rank × 12 cores; C = 3 needs C(5,3) = 10 cores.
        let ctrl = AdmissionController::new(1, 12);
        let (fp, leases) = ctrl.admit(1, &config(3, 1)).unwrap();
        assert_eq!(fp.per_rank_dpus, 10);
        assert_eq!(leases.len(), 1);
        let rej = ctrl.admit(2, &config(3, 1)).unwrap_err();
        assert_eq!(rej.limit, "dpus");
        assert!(rej.to_message().contains("dpus"), "{rej:?}");
        assert_eq!(ctrl.admitted(), 1);
        assert_eq!(ctrl.rejected(), 1);
        ctrl.release(1);
        assert!(ctrl.ledger_is_empty());
        ctrl.admit(2, &config(3, 1)).unwrap();
    }

    #[test]
    fn oversized_rank_spread_and_per_rank_blocks_are_named() {
        let ctrl = AdmissionController::new(2, 64);
        let rej = ctrl.admit(1, &config(3, 3)).unwrap_err();
        assert_eq!(rej.limit, "ranks");
        let ctrl = AdmissionController::new(1, 4);
        let rej = ctrl.admit(1, &config(3, 1)).unwrap_err();
        assert_eq!(rej.limit, "dpus");
        assert!(rej.message.contains("10"), "{rej:?}");
    }

    #[test]
    fn infeasible_mram_is_an_mram_rejection() {
        let ctrl = AdmissionController::new(1, 64);
        let mut cfg = config(2, 1);
        cfg.sample_capacity = Some(u64::MAX / 16);
        let rej = ctrl.admit(1, &cfg).unwrap_err();
        assert_eq!(rej.limit, "mram");
        assert!(ctrl.ledger_is_empty());
    }
}
