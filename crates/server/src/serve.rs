//! The `pimtc serve` daemon: one listener, many tenants.
//!
//! [`Server::start`] binds a std `TcpListener` and owns one simulated PIM
//! machine, modeled as `ranks × rank_dpus` cores. Tenants arrive over the
//! line-delimited JSON protocol ([`crate::protocol`]); each admitted
//! `create-session` leases a disjoint block of cores per rank
//! ([`crate::scheduler`]) and runs its own `TcSession` over a
//! `RankCluster` sized to exactly that lease, so tenants can never touch
//! each other's banks.
//!
//! Concurrency model — per-session serialization under a global fair
//! share:
//!
//! * every session has a bounded op queue (`queue_depth`); a connection
//!   thread pushing into a full queue blocks — that is the append
//!   backpressure the protocol promises;
//! * a session is in the global ready ring at most once (`queued` flag),
//!   so at most one worker ever executes ops for a given session — ops
//!   apply in submission order, which keeps multi-tenant streams
//!   bit-identical to isolated single-tenant runs;
//! * workers pull sessions round-robin from the ready ring and execute
//!   **one** op per turn, so a tenant streaming millions of edges cannot
//!   starve a neighbor's `query-count`.
//!
//! The same listener answers plain HTTP `GET`s (`/metrics`, `/healthz`,
//! `/trace`) with the `pim-metrics` exporter handlers, and `/healthz` is
//! extended to a per-session document: phase, sequence watermark, queue
//! depth, and anomalies for every live tenant.
//!
//! Drain ([`Server::begin_drain`] + [`Server::finish`], the SIGTERM path)
//! stops admitting, lets every queue run dry, checkpoints each live
//! session to `drain_dir/session-<id>/` in the PR 8 `PIMTCKPT` format,
//! and only then stops the workers.

use crate::admission::AdmissionController;
use crate::protocol::{
    error_response, ok_response, parse_request, push_json_string, ErrorCode, Request, SessionSpec,
    DEFAULT_MAX_FRAME,
};
use crate::scheduler::Lease;
use pim_graph::Edge;
use pim_metrics::{
    parse_request_line, respond_http, HealthSink, HealthState, MetricsHub, Watchdog, WatchdogConfig,
};
use pim_sim::{FaultPlan, FunctionalBackend, PimConfig, RankCluster, TimedBackend};
use pim_tc::{ExecBackend, TcConfig, TcError, TcResult, TcSession};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// How a machine is carved up and how the daemon schedules over it.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Ranks in the simulated machine.
    pub ranks: u32,
    /// Per-rank machine shape; `pim.total_dpus` is the cores **per rank**
    /// (each admitted session gets a slice of it via
    /// [`PimConfig::with_dpus`]).
    pub pim: PimConfig,
    /// Bound on each session's op queue; a full queue blocks the
    /// submitting connection (append backpressure).
    pub queue_depth: usize,
    /// Worker threads executing session ops.
    pub workers: usize,
    /// Cap on one request line, bytes.
    pub max_frame: usize,
    /// Where drain (and dir-less `checkpoint` ops) persist session
    /// snapshots; `None` disables both.
    pub drain_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ranks: 2,
            pim: PimConfig::default(),
            queue_depth: 32,
            workers: 4,
            max_frame: DEFAULT_MAX_FRAME,
            drain_dir: None,
        }
    }
}

/// What a completed drain did, for exit-status decisions (`--watchdog-fail`).
#[derive(Clone, Debug, Default)]
pub struct DrainReport {
    /// Sessions still live when the drain began.
    pub sessions: usize,
    /// `(session id, checkpoint path)` for every snapshot persisted.
    pub checkpointed: Vec<(u64, PathBuf)>,
    /// Watchdog anomalies raised across all sessions over their lifetime.
    pub anomalies: u64,
}

/// One tenant's session engine, generic over the execution backend the
/// tenant asked for.
enum SessionEngine {
    /// Cycle-accurate engine.
    Timed(TcSession<RankCluster<TimedBackend>>),
    /// Functional engine (same counts, zero clocks).
    Functional(TcSession<RankCluster<FunctionalBackend>>),
}

impl SessionEngine {
    fn start(config: &TcConfig, hub: Arc<MetricsHub>) -> Result<SessionEngine, TcError> {
        match config.backend {
            ExecBackend::Timed => Ok(SessionEngine::Timed(TcSession::start_cluster_metered(
                config,
                Some(hub),
            )?)),
            ExecBackend::Functional => Ok(SessionEngine::Functional(
                TcSession::start_cluster_metered(config, Some(hub))?,
            )),
        }
    }

    fn append(&mut self, edges: &[Edge]) -> Result<(), TcError> {
        match self {
            SessionEngine::Timed(s) => s.append(edges),
            SessionEngine::Functional(s) => s.append(edges),
        }
    }

    fn count(&mut self) -> Result<TcResult, TcError> {
        match self {
            SessionEngine::Timed(s) => s.count(),
            SessionEngine::Functional(s) => s.count(),
        }
    }

    fn checkpoint(&self, watermark: u64) -> Result<pim_tc::SessionCheckpoint, TcError> {
        match self {
            SessionEngine::Timed(s) => s.checkpoint(watermark),
            SessionEngine::Functional(s) => s.checkpoint(watermark),
        }
    }
}

/// An op queued on a session, plus the channel its response goes back on.
struct OpEnvelope {
    op: Op,
    reply: mpsc::Sender<String>,
}

enum Op {
    Append(Vec<Edge>),
    Count,
    Checkpoint(Option<PathBuf>),
    Close,
}

/// One admitted tenant.
struct Tenant {
    id: u64,
    /// The engine; `None` once closed. Only the single worker holding the
    /// session's ready-ring slot executes against it.
    engine: Mutex<Option<SessionEngine>>,
    queue: Mutex<VecDeque<OpEnvelope>>,
    /// Signaled when queue space frees up (backpressure wakeup).
    space: Condvar,
    /// True while the session sits in the ready ring (or a worker holds
    /// its turn) — the "at most one worker per session" latch.
    queued: AtomicBool,
    closed: AtomicBool,
    /// Ops applied — the session's sequence watermark.
    seq: AtomicU64,
    /// Edges appended after dedup.
    edges: AtomicU64,
    /// Dedup set mirroring host preprocessing: normalized, loop-free,
    /// first occurrence wins.
    seen: Mutex<HashSet<(u32, u32)>>,
    /// The fully resolved config, as JSON (echoed at create, reused by
    /// clients to reproduce the session exactly).
    config_json: String,
    leases: Vec<Lease>,
    health: Arc<HealthState>,
    watchdog: Mutex<Watchdog>,
}

/// Shared server state: admission, sessions, the ready ring, drain flags.
struct ServerState {
    cfg: ServeConfig,
    hub: Arc<MetricsHub>,
    admission: AdmissionController,
    sessions: Mutex<HashMap<u64, Arc<Tenant>>>,
    next_session: AtomicU64,
    ready: Mutex<VecDeque<Arc<Tenant>>>,
    ready_cv: Condvar,
    /// No new sessions/ops; connections wind down.
    draining: AtomicBool,
    /// Workers and connection threads exit.
    stop: AtomicBool,
    /// Wakes `wait_drain` when a `shutdown` frame (or signal handler)
    /// requests a drain.
    drain_gate: Mutex<()>,
    drain_cv: Condvar,
}

impl ServerState {
    fn metric(&self, name: &str) -> pim_metrics::Counter {
        self.hub.registry().counter(name)
    }

    fn sessions_gauge(&self) -> pim_metrics::Gauge {
        self.hub.registry().gauge("pim_serve_sessions_active")
    }
}

/// The daemon handle: owns the listener, workers, and connection threads.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port) and starts the accept loop
    /// plus `cfg.workers` op workers.
    pub fn start(addr: &str, cfg: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;
        let hub = Arc::new(MetricsHub::new());
        let registry = hub.registry();
        registry.describe("pim_serve_sessions_active", "Live sessions");
        registry.describe("pim_serve_admitted_total", "Sessions admitted");
        registry.describe("pim_serve_rejected_total", "Sessions rejected by admission");
        registry.describe("pim_serve_ops_total", "Protocol ops applied");
        registry.describe(
            "pim_serve_frames_rejected_total",
            "Frames refused (malformed or oversized)",
        );
        let workers_n = cfg.workers.max(1);
        let state = Arc::new(ServerState {
            admission: AdmissionController::new(cfg.ranks, cfg.pim.total_dpus),
            cfg,
            hub,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            drain_gate: Mutex::new(()),
            drain_cv: Condvar::new(),
        });
        state.sessions_gauge().set(0.0);

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let state = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pim-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .map_err(|e| format!("cannot spawn worker: {e}"))?,
            );
        }

        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_state = Arc::clone(&state);
        let accept_conns = Arc::clone(&conns);
        let accept = std::thread::Builder::new()
            .name("pim-serve-accept".into())
            .spawn(move || {
                while !accept_state.stop.load(Ordering::SeqCst)
                    && !accept_state.draining.load(Ordering::SeqCst)
                {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let state = Arc::clone(&accept_state);
                            if let Ok(h) = std::thread::Builder::new()
                                .name("pim-serve-conn".into())
                                .spawn(move || handle_connection(&state, stream))
                            {
                                accept_conns.lock().expect("conns poisoned").push(h);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
            .map_err(|e| format!("cannot spawn accept loop: {e}"))?;

        Ok(Server {
            addr: local,
            state,
            accept: Some(accept),
            workers,
            conns,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server-wide metrics hub backing `GET /metrics`.
    pub fn hub(&self) -> Arc<MetricsHub> {
        Arc::clone(&self.state.hub)
    }

    /// Audits the lease ledger's disjointness invariant (test hook).
    pub fn check_lease_invariants(&self) -> Result<(), String> {
        self.state.admission.check_invariants()
    }

    /// Every outstanding DPU lease (test hook).
    pub fn leases(&self) -> Vec<Lease> {
        self.state.admission.leases()
    }

    /// True once a drain has been requested (by [`Server::begin_drain`],
    /// a `shutdown` frame, or the CLI's signal handler).
    pub fn draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// Blocks until a drain is requested or `poll` returns true (checked
    /// every ~100 ms; the CLI passes its SIGTERM flag here).
    pub fn wait_drain(&self, poll: impl Fn() -> bool) {
        let mut gate = self.state.drain_gate.lock().expect("drain gate poisoned");
        while !self.draining() && !poll() {
            let (guard, _t) = self
                .state
                .drain_cv
                .wait_timeout(gate, Duration::from_millis(100))
                .expect("drain gate poisoned");
            gate = guard;
        }
    }

    /// Requests a drain: stop admitting sessions and ops. Idempotent;
    /// `finish` completes the shutdown.
    pub fn begin_drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.drain_cv.notify_all();
    }

    /// Completes a graceful shutdown: waits for every session queue to
    /// run dry, checkpoints each live session into
    /// `drain_dir/session-<id>/`, then stops workers and connection
    /// threads. Also run on drop (without the report).
    pub fn finish(&mut self) -> DrainReport {
        self.begin_drain();
        // Let every queued op apply.
        loop {
            let busy = {
                let sessions = self.state.sessions.lock().expect("sessions poisoned");
                sessions.values().any(|t| {
                    !t.queue.lock().expect("queue poisoned").is_empty()
                        || t.queued.load(Ordering::SeqCst)
                })
            };
            if !busy {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Checkpoint the survivors.
        let mut report = DrainReport::default();
        let tenants: Vec<Arc<Tenant>> = {
            let sessions = self.state.sessions.lock().expect("sessions poisoned");
            sessions.values().cloned().collect()
        };
        report.sessions = tenants.len();
        for tenant in &tenants {
            report.anomalies += tenant.health.anomaly_count();
            if let Some(dir) = &self.state.cfg.drain_dir {
                let engine = tenant.engine.lock().expect("engine poisoned");
                if let Some(engine) = engine.as_ref() {
                    let dest = dir.join(format!("session-{}", tenant.id));
                    let saved = std::fs::create_dir_all(&dest)
                        .map_err(|e| TcError::Checkpoint(format!("{}: {e}", dest.display())))
                        .and_then(|()| engine.checkpoint(tenant.seq.load(Ordering::SeqCst)))
                        .and_then(|snap| snap.save(&dest));
                    match saved {
                        Ok(path) => report.checkpointed.push((tenant.id, path)),
                        Err(e) => eprintln!("drain: session {}: {e}", tenant.id),
                    }
                }
            }
        }
        // Stop the machinery.
        self.state.stop.store(true, Ordering::SeqCst);
        self.state.ready_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns: Vec<_> = self
            .conns
            .lock()
            .expect("conns poisoned")
            .drain(..)
            .collect();
        for c in conns {
            let _ = c.join();
        }
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.finish();
        }
    }
}

/// One worker: pull a session from the ready ring, run one op, requeue.
fn worker_loop(state: &ServerState) {
    loop {
        let tenant = {
            let mut ready = state.ready.lock().expect("ready poisoned");
            loop {
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(t) = ready.pop_front() {
                    break t;
                }
                let (guard, _t) = state
                    .ready_cv
                    .wait_timeout(ready, Duration::from_millis(100))
                    .expect("ready poisoned");
                ready = guard;
            }
        };
        let envelope = {
            let mut queue = tenant.queue.lock().expect("queue poisoned");
            let envelope = queue.pop_front();
            // Space freed: wake one backpressured submitter.
            tenant.space.notify_all();
            envelope
        };
        if let Some(envelope) = envelope {
            let response = execute_op(state, &tenant, envelope.op);
            let _ = envelope.reply.send(response);
        }
        // Hand the turn back. Re-check the queue afterwards: a submitter
        // racing between our pop and this store must not strand its op
        // with no worker scheduled.
        tenant.queued.store(false, Ordering::SeqCst);
        let nonempty = !tenant.queue.lock().expect("queue poisoned").is_empty();
        if nonempty && !tenant.queued.swap(true, Ordering::SeqCst) {
            state
                .ready
                .lock()
                .expect("ready poisoned")
                .push_back(Arc::clone(&tenant));
            state.ready_cv.notify_one();
        }
    }
}

/// Applies one op to a session (the caller holds the session's turn).
fn execute_op(state: &ServerState, tenant: &Arc<Tenant>, op: Op) -> String {
    let mut engine = tenant.engine.lock().expect("engine poisoned");
    let Some(live) = engine.as_mut() else {
        return error_response(
            ErrorCode::SessionClosed,
            &format!("session {} is closed", tenant.id),
        );
    };
    state.metric("pim_serve_ops_total").inc();
    let response = match op {
        Op::Append(edges) => match live.append(&edges) {
            Ok(()) => {
                let seq = tenant.seq.fetch_add(1, Ordering::SeqCst) + 1;
                let total = tenant.edges.fetch_add(edges.len() as u64, Ordering::SeqCst)
                    + edges.len() as u64;
                ok_response(
                    "append-edges",
                    &[
                        format!("\"session\":{}", tenant.id),
                        format!("\"appended\":{}", edges.len()),
                        format!("\"edges_total\":{total}"),
                        format!("\"seq\":{seq}"),
                    ],
                )
            }
            Err(e) => engine_error(&e),
        },
        Op::Count => match live.count() {
            Ok(result) => {
                let seq = tenant.seq.fetch_add(1, Ordering::SeqCst) + 1;
                ok_response(
                    "query-count",
                    &[
                        format!("\"session\":{}", tenant.id),
                        format!("\"triangles\":{}", result.rounded()),
                        format!("\"estimate\":{:?}", result.estimate),
                        format!("\"estimate_bits\":{}", result.estimate.to_bits()),
                        format!("\"exact\":{}", result.exact),
                        format!("\"nr_dpus\":{}", result.nr_dpus),
                        format!("\"max_dpu_load\":{}", result.max_dpu_load),
                        format!("\"seq\":{seq}"),
                    ],
                )
            }
            Err(e) => engine_error(&e),
        },
        Op::Checkpoint(dir) => {
            let dest = dir.or_else(|| {
                state
                    .cfg
                    .drain_dir
                    .as_ref()
                    .map(|d| d.join(format!("session-{}", tenant.id)))
            });
            let Some(dest) = dest else {
                return error_response(
                    ErrorCode::Checkpoint,
                    "no destination: pass \"dir\" or start the server with a drain dir",
                );
            };
            let watermark = tenant.seq.load(Ordering::SeqCst);
            let saved = std::fs::create_dir_all(&dest)
                .map_err(|e| TcError::Checkpoint(format!("{}: {e}", dest.display())))
                .and_then(|()| live.checkpoint(watermark))
                .and_then(|snap| snap.save(&dest));
            match saved {
                Ok(path) => {
                    let mut path_json = String::new();
                    push_json_string(&path.display().to_string(), &mut path_json);
                    ok_response(
                        "checkpoint",
                        &[
                            format!("\"session\":{}", tenant.id),
                            format!("\"path\":{path_json}"),
                            format!("\"watermark\":{watermark}"),
                        ],
                    )
                }
                Err(e) => error_response(ErrorCode::Checkpoint, &e.to_string()),
            }
        }
        Op::Close => {
            *engine = None;
            tenant.closed.store(true, Ordering::SeqCst);
            state.admission.release(tenant.id);
            let mut sessions = state.sessions.lock().expect("sessions poisoned");
            sessions.remove(&tenant.id);
            state.sessions_gauge().set(sessions.len() as f64);
            return ok_response("close", &[format!("\"session\":{}", tenant.id)]);
        }
    };
    // A watchdog pass between ops, like the CLI's dynamic loop: anomalies
    // land on the session's health doc (and /healthz).
    let _ = tenant.watchdog.lock().expect("watchdog poisoned").check();
    response
}

fn engine_error(e: &TcError) -> String {
    let code = match e {
        TcError::Config(_) => ErrorCode::BadRequest,
        TcError::Checkpoint(_) => ErrorCode::Checkpoint,
        _ => ErrorCode::Faulted,
    };
    error_response(code, &e.to_string())
}

/// Queues `op` on `tenant`, blocking while the queue is full
/// (backpressure). Returns the channel the response arrives on.
fn submit(
    state: &ServerState,
    tenant: &Arc<Tenant>,
    op: Op,
) -> Result<mpsc::Receiver<String>, (ErrorCode, String)> {
    if tenant.closed.load(Ordering::SeqCst) {
        return Err((
            ErrorCode::SessionClosed,
            format!("session {} is closed", tenant.id),
        ));
    }
    let (reply, rx) = mpsc::channel();
    {
        let mut queue = tenant.queue.lock().expect("queue poisoned");
        while queue.len() >= state.cfg.queue_depth {
            if state.stop.load(Ordering::SeqCst) {
                return Err((ErrorCode::Draining, "server is shutting down".into()));
            }
            let (guard, _t) = tenant
                .space
                .wait_timeout(queue, Duration::from_millis(50))
                .expect("queue poisoned");
            queue = guard;
        }
        queue.push_back(OpEnvelope { op, reply });
    }
    if !tenant.queued.swap(true, Ordering::SeqCst) {
        state
            .ready
            .lock()
            .expect("ready poisoned")
            .push_back(Arc::clone(tenant));
        state.ready_cv.notify_one();
    }
    Ok(rx)
}

/// Reads one newline-terminated frame, enforcing the frame cap.
enum FrameRead {
    Line(String),
    /// Peer went away (EOF, possibly mid-frame) or the server stopped.
    Gone,
    TooLarge,
}

fn read_frame(reader: &mut BufReader<TcpStream>, max: usize, state: &ServerState) -> FrameRead {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let budget = (max + 1).saturating_sub(buf.len()) as u64;
        let mut limited = Read::by_ref(reader).take(budget);
        match limited.read_until(b'\n', &mut buf) {
            Ok(0) if buf.is_empty() => return FrameRead::Gone,
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    return match String::from_utf8(buf) {
                        Ok(line) => FrameRead::Line(line),
                        Err(_) => FrameRead::Line(String::new()), // surfaces as bad JSON
                    };
                }
                if buf.len() > max {
                    return FrameRead::TooLarge;
                }
                // Partial line at EOF: a mid-stream disconnect. Drop it.
                return FrameRead::Gone;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.stop.load(Ordering::SeqCst) {
                    return FrameRead::Gone;
                }
            }
            Err(_) => return FrameRead::Gone,
        }
    }
}

/// One connection: frames in, frames out, until EOF or shutdown. The
/// first line decides the dialect — an HTTP request line is routed to the
/// metrics endpoints; anything else is protocol JSON.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    // Request/response frames are small; without NODELAY, Nagle plus
    // delayed ACKs adds tens of milliseconds per op.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_frame(&mut reader, state.cfg.max_frame, state) {
            FrameRead::Gone => return,
            FrameRead::TooLarge => {
                state.metric("pim_serve_frames_rejected_total").inc();
                let msg = format!(
                    "request line exceeds the {}-byte frame cap; closing",
                    state.cfg.max_frame
                );
                let _ = writeln!(writer, "{}", error_response(ErrorCode::FrameTooLarge, &msg));
                return;
            }
            FrameRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                if is_http_request_line(&line) {
                    serve_http(state, &line, &mut reader, &mut writer);
                    return;
                }
                let response = handle_frame(state, &line);
                if writeln!(writer, "{response}").is_err() {
                    return;
                }
            }
        }
    }
}

/// `GET /healthz HTTP/1.1` — method token, path, `HTTP/` version tag.
fn is_http_request_line(line: &str) -> bool {
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let _path = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    version.starts_with("HTTP/")
        && matches!(
            method,
            "GET" | "HEAD" | "POST" | "PUT" | "DELETE" | "OPTIONS" | "PATCH"
        )
}

/// Serves one HTTP exchange on the shared listener: `/metrics` is the
/// live Prometheus scrape of the server hub, `/healthz` the per-session
/// health document, `/trace` an (empty) chrome trace for tool parity.
fn serve_http(
    state: &ServerState,
    request_line: &str,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
) {
    // Drain the header block so the peer's send buffer clears.
    let mut header = String::new();
    while let Ok(n) = reader.read_line(&mut header) {
        if n == 0 || header.trim_end().is_empty() {
            break;
        }
        header.clear();
    }
    let (method, path) = parse_request_line(request_line);
    if method != "GET" {
        respond_http(
            writer,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
        return;
    }
    match path.as_str() {
        "/metrics" => {
            let body = state.hub.render_prometheus();
            respond_http(
                writer,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => {
            let body = render_healthz(state);
            respond_http(writer, 200, "OK", "application/json", &body);
        }
        "/trace" => {
            respond_http(
                writer,
                200,
                "OK",
                "application/json",
                "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}",
            );
        }
        _ => {
            respond_http(
                writer,
                404,
                "Not Found",
                "text/plain",
                "endpoints: /metrics /healthz /trace\n",
            );
        }
    }
}

/// The per-session `/healthz` document.
fn render_healthz(state: &ServerState) -> String {
    let sessions: Vec<Arc<Tenant>> = {
        let map = state.sessions.lock().expect("sessions poisoned");
        let mut v: Vec<Arc<Tenant>> = map.values().cloned().collect();
        v.sort_by_key(|t| t.id);
        v
    };
    let draining = state.draining.load(Ordering::SeqCst);
    let anomalies: u64 = sessions.iter().map(|t| t.health.anomaly_count()).sum();
    let status = if draining {
        "draining"
    } else if anomalies > 0 {
        "degraded"
    } else {
        "ok"
    };
    let mut out = String::with_capacity(256);
    out.push_str("{\"status\":");
    push_json_string(status, &mut out);
    out.push_str(&format!(
        ",\"draining\":{draining},\"sessions_active\":{},\"admitted\":{},\"rejected\":{}",
        sessions.len(),
        state.admission.admitted(),
        state.admission.rejected()
    ));
    out.push_str(&format!(
        ",\"leased_dpus\":{},\"total_dpus\":{},\"anomaly_count\":{anomalies}",
        state.admission.leased_dpus(),
        state.admission.total_dpus()
    ));
    out.push_str(",\"sessions\":[");
    for (i, t) in sessions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"id\":{},\"phase\":", t.id));
        push_json_string(&t.health.phase(), &mut out);
        out.push_str(&format!(
            ",\"seq\":{},\"last_seq\":{},\"queue_depth\":{},\"edges\":{},\"anomaly_count\":{}",
            t.seq.load(Ordering::SeqCst),
            t.health.last_seq(),
            t.queue.lock().expect("queue poisoned").len(),
            t.edges.load(Ordering::SeqCst),
            t.health.anomaly_count()
        ));
        out.push_str(",\"leases\":[");
        for (j, l) in t.leases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rank\":{},\"start\":{},\"len\":{}}}",
                l.rank, l.start, l.len
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Dispatches one protocol frame to a response frame.
fn handle_frame(state: &Arc<ServerState>, line: &str) -> String {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err((code, message)) => {
            state.metric("pim_serve_frames_rejected_total").inc();
            return error_response(code, &message);
        }
    };
    match request {
        Request::Ping => ok_response("ping", &[]),
        Request::Stats => render_stats(state),
        Request::Shutdown => {
            state.draining.store(true, Ordering::SeqCst);
            state.drain_cv.notify_all();
            ok_response("shutdown", &[String::from("\"draining\":true")])
        }
        Request::CreateSession(spec) => create_session(state, &spec),
        Request::AppendEdges { session, edges } => {
            let Some(tenant) = lookup(state, session) else {
                return unknown_session(session);
            };
            // Mirror host preprocessing: normalize, drop self-loops,
            // first occurrence wins — so a serve-hosted stream matches an
            // isolated session fed the same prepared edges.
            let fresh = {
                let mut seen = tenant.seen.lock().expect("seen poisoned");
                let mut fresh = Vec::with_capacity(edges.len());
                for e in edges {
                    if e.is_self_loop() {
                        continue;
                    }
                    let n = e.normalized();
                    if seen.insert((n.u, n.v)) {
                        fresh.push(n);
                    }
                }
                fresh
            };
            run_op(state, &tenant, Op::Append(fresh))
        }
        Request::QueryCount { session } => {
            let Some(tenant) = lookup(state, session) else {
                return unknown_session(session);
            };
            run_op(state, &tenant, Op::Count)
        }
        Request::Checkpoint { session, dir } => {
            let Some(tenant) = lookup(state, session) else {
                return unknown_session(session);
            };
            run_op(state, &tenant, Op::Checkpoint(dir.map(PathBuf::from)))
        }
        Request::Close { session } => {
            let Some(tenant) = lookup(state, session) else {
                return unknown_session(session);
            };
            run_op(state, &tenant, Op::Close)
        }
    }
}

fn lookup(state: &ServerState, session: u64) -> Option<Arc<Tenant>> {
    state
        .sessions
        .lock()
        .expect("sessions poisoned")
        .get(&session)
        .cloned()
}

fn unknown_session(session: u64) -> String {
    error_response(ErrorCode::UnknownSession, &format!("no session {session}"))
}

/// Queues an op and waits for its response.
fn run_op(state: &Arc<ServerState>, tenant: &Arc<Tenant>, op: Op) -> String {
    if state.draining.load(Ordering::SeqCst) && !matches!(op, Op::Close) {
        return error_response(
            ErrorCode::Draining,
            "server is draining; only close is accepted",
        );
    }
    match submit(state, tenant, op) {
        Ok(rx) => rx
            .recv()
            .unwrap_or_else(|_| error_response(ErrorCode::Draining, "server stopped mid-op")),
        Err((code, message)) => error_response(code, &message),
    }
}

/// Resolves a [`SessionSpec`] to a full `TcConfig` shaped for this
/// machine's per-rank template.
fn build_session_config(
    spec: &SessionSpec,
    template: &PimConfig,
) -> Result<TcConfig, (ErrorCode, String)> {
    let bad = |m: String| (ErrorCode::BadRequest, m);
    let mut builder = TcConfig::builder().colors(spec.colors);
    if let Some(seed) = spec.seed {
        builder = builder.seed(seed);
    }
    if let Some(p) = spec.uniform_p {
        builder = builder.uniform_p(p);
    }
    if let Some(m) = spec.capacity {
        builder = builder.sample_capacity(m);
    }
    if let Some((k, t)) = spec.misra_gries {
        builder = builder.misra_gries(k, t);
    }
    // The wire spec is authoritative for the session's shape: the daemon
    // must not inherit `PIM_TC_RANKS` from its own environment, or the
    // same frame would admit on one deployment and bounce on another.
    builder = builder.ranks(spec.ranks.unwrap_or(1));
    if let Some(s) = spec.spares {
        builder = builder.spare_dpus(s);
    }
    if let Some(journal) = spec.journal {
        builder = builder.journal(journal);
    }
    if let Some(backend) = &spec.backend {
        let backend: ExecBackend = backend.parse().map_err(|e: TcError| bad(e.to_string()))?;
        builder = builder.backend(backend);
    }
    let mut pim = *template;
    if let Some(faults) = &spec.faults {
        let plan = FaultPlan::parse(faults).map_err(|e| bad(format!("\"faults\": {e}")))?;
        pim.fault = Some(plan);
    }
    // Validate against an uncapped core budget: whether the session fits
    // the machine is the admission controller's call (which names the
    // binding limit), not the config validator's. The real per-rank core
    // count is applied after admission via `with_dpus(per_rank_dpus)`.
    builder = builder.pim(pim.with_dpus(u32::MAX as usize));
    builder.build().map_err(|e| bad(e.to_string()))
}

/// Admits, leases, and starts one session.
fn create_session(state: &Arc<ServerState>, spec: &SessionSpec) -> String {
    if state.draining.load(Ordering::SeqCst) {
        return error_response(ErrorCode::Draining, "server is draining; no new sessions");
    }
    let mut config = match build_session_config(spec, &state.cfg.pim) {
        Ok(config) => config,
        Err((code, message)) => return error_response(code, &message),
    };
    let id = state.next_session.fetch_add(1, Ordering::SeqCst) + 1;
    let (footprint, leases) = match state.admission.admit(id, &config) {
        Ok(granted) => granted,
        Err(rejection) => {
            state.metric("pim_serve_rejected_total").inc();
            return error_response(ErrorCode::Admission, &rejection.to_message());
        }
    };
    // Shrink the session's machine to exactly its lease: the RankCluster
    // allocates per_rank_dpus cores per rank, nothing more.
    config.pim = config.pim.with_dpus(footprint.per_rank_dpus as usize);

    let hub = Arc::new(MetricsHub::new());
    let health = Arc::new(HealthState::new());
    hub.add_sink(Box::new(HealthSink::new(Arc::clone(&health))));
    let watchdog = Watchdog::new(Arc::clone(&hub), WatchdogConfig::default());
    let engine = match SessionEngine::start(&config, Arc::clone(&hub)) {
        Ok(engine) => engine,
        Err(e) => {
            state.admission.release(id);
            return engine_error(&e);
        }
    };
    let config_json = serde_json::to_string(&config).unwrap_or_else(|_| String::from("null"));
    let mut leases_json = String::from("[");
    for (i, l) in leases.iter().enumerate() {
        if i > 0 {
            leases_json.push(',');
        }
        leases_json.push_str(&format!(
            "{{\"rank\":{},\"start\":{},\"len\":{}}}",
            l.rank, l.start, l.len
        ));
    }
    leases_json.push(']');
    let tenant = Arc::new(Tenant {
        id,
        engine: Mutex::new(Some(engine)),
        queue: Mutex::new(VecDeque::new()),
        space: Condvar::new(),
        queued: AtomicBool::new(false),
        closed: AtomicBool::new(false),
        seq: AtomicU64::new(0),
        edges: AtomicU64::new(0),
        seen: Mutex::new(HashSet::new()),
        config_json,
        leases,
        health,
        watchdog: Mutex::new(watchdog),
    });
    {
        let mut sessions = state.sessions.lock().expect("sessions poisoned");
        sessions.insert(id, Arc::clone(&tenant));
        state.sessions_gauge().set(sessions.len() as f64);
    }
    state.metric("pim_serve_admitted_total").inc();
    ok_response(
        "create-session",
        &[
            format!("\"session\":{id}"),
            format!("\"config\":{}", tenant.config_json),
            format!("\"leases\":{leases_json}"),
            format!(
                "\"footprint\":{{\"partitions\":{},\"ranks\":{},\"per_rank_dpus\":{},\"total_dpus\":{}}}",
                footprint.partitions, footprint.ranks, footprint.per_rank_dpus, footprint.total_dpus
            ),
        ],
    )
}

/// The `stats` verb: server-wide counters and the lease picture.
fn render_stats(state: &ServerState) -> String {
    let sessions = state.sessions.lock().expect("sessions poisoned").len();
    let mut leases_json = String::from("[");
    for (i, l) in state.admission.leases().iter().enumerate() {
        if i > 0 {
            leases_json.push(',');
        }
        leases_json.push_str(&format!(
            "{{\"session\":{},\"rank\":{},\"start\":{},\"len\":{}}}",
            l.session, l.rank, l.start, l.len
        ));
    }
    leases_json.push(']');
    ok_response(
        "stats",
        &[
            format!("\"sessions_active\":{sessions}"),
            format!("\"admitted\":{}", state.admission.admitted()),
            format!("\"rejected\":{}", state.admission.rejected()),
            format!("\"leased_dpus\":{}", state.admission.leased_dpus()),
            format!("\"total_dpus\":{}", state.admission.total_dpus()),
            format!("\"ranks\":{}", state.cfg.ranks),
            format!("\"rank_dpus\":{}", state.cfg.pim.total_dpus),
            format!("\"draining\":{}", state.draining.load(Ordering::SeqCst)),
            format!("\"leases\":{leases_json}"),
        ],
    )
}
