//! Property battery for the admission controller: arbitrary mixes of
//! session asks (colors, sample capacity, rank spread, spares) against
//! arbitrary machine shapes. The controller must (1) only admit sets
//! that fit the cluster's triplet/DPU budget, with disjoint in-bounds
//! leases matching the footprint `session_footprint` computes; (2) name
//! the binding limit on every rejection; and (3) leave the ledger empty
//! after every admit/release round-trip.

use pim_server::AdmissionController;
use pim_sim::PimConfig;
use pim_tc::planner::session_footprint;
use pim_tc::TcConfig;
use proptest::prelude::*;

/// One session ask, pre-resolution.
#[derive(Clone, Debug)]
struct Ask {
    colors: u32,
    ranks: u32,
    spares: u32,
    /// `Some(huge)` asks for an MRAM-infeasible reservoir.
    capacity: Option<u64>,
}

fn ask_strategy() -> impl Strategy<Value = Ask> {
    (
        1u32..5,
        1u32..4,
        0u32..3,
        prop_oneof![
            8 => Just(None),
            1 => Just(Some(u64::MAX / 16)),
        ],
    )
        .prop_map(|(colors, ranks, spares, capacity)| Ask {
            colors,
            ranks,
            spares,
            capacity,
        })
}

fn config_for(ask: &Ask) -> TcConfig {
    // Spare-core recovery needs a redundant replica, i.e. C >= 2.
    let spares = if ask.colors >= 2 { ask.spares } else { 0 };
    let mut cfg = TcConfig::builder()
        .colors(ask.colors)
        .ranks(ask.ranks)
        .spare_dpus(spares)
        .pim(PimConfig {
            total_dpus: 1 << 20, // capacity is admission's call, not validation's
            mram_capacity: 1 << 20,
            ..PimConfig::tiny()
        })
        .build()
        .unwrap();
    cfg.sample_capacity = ask.capacity;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn admitted_sets_fit_and_round_trips_empty_the_ledger(
        asks in prop::collection::vec(ask_strategy(), 1..12),
        machine_ranks in 1u32..5,
        rank_dpus in 4usize..96,
    ) {
        let ctrl = AdmissionController::new(machine_ranks, rank_dpus);
        let mut admitted_ids = Vec::new();
        let mut expected_leased = 0usize;
        for (i, ask) in asks.iter().enumerate() {
            let id = i as u64 + 1;
            let cfg = config_for(ask);
            match ctrl.admit(id, &cfg) {
                Ok((fp, leases)) => {
                    // The grant matches the planner's footprint exactly.
                    let want = session_footprint(&cfg).unwrap();
                    prop_assert_eq!(fp, want);
                    prop_assert_eq!(leases.len() as u32, fp.ranks);
                    for lease in &leases {
                        prop_assert_eq!(lease.session, id);
                        prop_assert_eq!(lease.len as u64, fp.per_rank_dpus);
                        prop_assert!(lease.end() <= rank_dpus, "lease in bounds");
                    }
                    // Distinct ranks per session.
                    let mut ranks: Vec<u32> = leases.iter().map(|l| l.rank).collect();
                    ranks.dedup();
                    prop_assert_eq!(ranks.len() as u32, fp.ranks);
                    expected_leased += fp.total_dpus as usize;
                    admitted_ids.push(id);
                }
                Err(rej) => {
                    prop_assert!(
                        ["mram", "ranks", "dpus", "config"].contains(&rej.limit),
                        "unnamed limit: {:?}", rej
                    );
                    prop_assert!(!rej.message.is_empty());
                    // The verdict is honest: an mram ask really was
                    // infeasible, a ranks ask really over-sharded.
                    match rej.limit {
                        "mram" => prop_assert!(ask.capacity.is_some(), "{:?}", rej),
                        "ranks" => prop_assert!(
                            cfg.effective_ranks() > machine_ranks, "{:?}", rej
                        ),
                        "dpus" => prop_assert!(
                            rej.message.contains("cores"),
                            "dpus rejection names the arithmetic: {:?}", rej
                        ),
                        _ => {}
                    }
                }
            }
            // Budget and disjointness hold after every decision.
            prop_assert_eq!(ctrl.leased_dpus(), expected_leased);
            prop_assert!(ctrl.leased_dpus() <= ctrl.total_dpus());
            let audit = ctrl.check_invariants();
            prop_assert!(audit.is_ok(), "ledger invariant broken: {:?}", audit);
        }
        prop_assert_eq!(ctrl.admitted() + ctrl.rejected(), asks.len() as u64);
        // Release everything: the ledger must drain to empty.
        for id in admitted_ids {
            ctrl.release(id);
        }
        prop_assert!(ctrl.ledger_is_empty());
        prop_assert_eq!(ctrl.leased_dpus(), 0);
    }

    /// Rejection never mutates the ledger: the same ask that failed on a
    /// full machine succeeds after the blockers release, with the exact
    /// footprint the planner predicts.
    #[test]
    fn rejection_then_release_then_admit_is_clean(
        ask in ask_strategy(),
        machine_ranks in 1u32..4,
    ) {
        // Shape the ask into a feasible one: no reservoir override, rank
        // spread within the machine (the vendored proptest has no
        // `prop_assume`).
        let mut ask = ask;
        ask.capacity = None;
        ask.ranks = ask.ranks.min(machine_ranks);
        let cfg = config_for(&ask);
        let fp = session_footprint(&cfg).unwrap();
        // Size each rank so exactly one copy of the ask fits per
        // `fp.ranks` ranks: `floor(machine_ranks / fp.ranks)` copies fill
        // the machine, the next one must bounce.
        let ctrl = AdmissionController::new(machine_ranks, fp.per_rank_dpus as usize);
        let fits = (machine_ranks / fp.ranks) as u64;
        let blockers: Vec<u64> = (0..fits).map(|i| 100 + i).collect();
        for &b in &blockers {
            ctrl.admit(b, &cfg).unwrap();
        }
        let before = ctrl.leases();
        let rej = ctrl.admit(1, &cfg).unwrap_err();
        prop_assert_eq!(rej.limit, "dpus");
        prop_assert_eq!(ctrl.leases(), before, "rejection mutated the ledger");
        for b in blockers {
            ctrl.release(b);
        }
        let (granted, _) = ctrl.admit(1, &cfg).unwrap();
        prop_assert_eq!(granted, fp);
    }
}
