//! Negative-path coverage: the simulator's hardware guards must surface as
//! typed [`SimError`]s — never panics — on both execution backends, and the
//! fault-injection plane must replay deterministically.

use pim_sim::backend::{FunctionalBackend, PimBackend, TimedBackend};
use pim_sim::fault::{FaultPlan, FaultState, OpKind};
use pim_sim::system::HostWrite;
use pim_sim::{CostModel, PimConfig, SimError, SystemReport};

fn tiny<B: PimBackend>(nr_dpus: usize) -> B {
    B::allocate(nr_dpus, PimConfig::tiny(), CostModel::default()).unwrap()
}

fn faulty<B: PimBackend>(nr_dpus: usize, spec: &str) -> B {
    let config = PimConfig {
        fault: Some(FaultPlan::parse(spec).unwrap()),
        ..PimConfig::tiny()
    };
    B::allocate(nr_dpus, config, CostModel::default()).unwrap()
}

/// Every guard, exercised once per backend through the shared trait.
fn guards_return_errors<B: PimBackend>() {
    let mut sys: B = tiny(2);

    // MRAM out-of-bounds DMA from a kernel.
    let err = sys
        .execute(|ctx| {
            let mut t = ctx.tasklet(0)?;
            t.mram_read_one::<u64>(1 << 30).map(|_| ())
        })
        .unwrap_err();
    assert!(matches!(
        err,
        SimError::MramOverflow { .. } | SimError::BadAddress { .. }
    ));

    // WRAM arena overflow.
    let err = sys
        .execute(|ctx| {
            let mut t = ctx.tasklet(0)?;
            t.alloc_wram::<u64>(1 << 20).map(|_| ())
        })
        .unwrap_err();
    assert!(matches!(err, SimError::WramOverflow { .. }));

    // Misaligned kernel DMA.
    let err = sys
        .execute(|ctx| {
            let mut t = ctx.tasklet(0)?;
            t.mram_write(4, &[1u32]).map(|_| ())
        })
        .unwrap_err();
    assert!(matches!(err, SimError::BadDma { .. }));

    // Host gather past the initialized high-water mark.
    let err = sys.gather_one::<u64>(1 << 40).unwrap_err();
    assert!(matches!(err, SimError::BadAddress { .. }));

    // Push to an out-of-range DPU id.
    let err = sys
        .push(vec![HostWrite {
            dpu: 99,
            offset: 0,
            data: vec![0],
        }])
        .unwrap_err();
    assert!(matches!(err, SimError::NoSuchDpu { dpu: 99, .. }));

    // Over-allocation.
    assert!(matches!(
        B::allocate(65, PimConfig::tiny(), CostModel::default()),
        Err(SimError::TooManyDpus { .. })
    ));
}

#[test]
fn guards_return_errors_on_timed_backend() {
    guards_return_errors::<TimedBackend>();
}

#[test]
fn guards_return_errors_on_functional_backend() {
    guards_return_errors::<FunctionalBackend>();
}

/// Drives a fixed op sequence and logs which ops fail, on any backend.
fn fault_log<B: PimBackend>(spec: &str) -> Vec<(usize, String)> {
    let mut sys: B = faulty(4, spec);
    // Initialize every bank so later gathers are in-bounds; retry through
    // injected transient failures (each attempt consumes one op index, so
    // the sequence stays deterministic).
    loop {
        match sys.broadcast(0, &[0u8; 8]) {
            Ok(()) => break,
            Err(e) if e.is_transient() => continue,
            Err(e) => panic!("unexpected init error: {e}"),
        }
    }
    let mut log = Vec::new();
    for i in 0..48usize {
        let r: Result<(), SimError> = match i % 3 {
            0 => sys.push(vec![HostWrite {
                dpu: i % 4,
                offset: 0,
                data: vec![1u8; 8],
            }]),
            1 => sys
                .execute_labeled_masked("probe", |ctx| {
                    let mut t = ctx.tasklet(0)?;
                    t.charge(1);
                    Ok(())
                })
                .map(|_| ()),
            _ => sys.gather(0, 8).map(|_| ()),
        };
        if let Err(e) = r {
            log.push((i, format!("{e:?}")));
        }
    }
    log
}

#[test]
fn injected_faults_replay_identically_across_runs_and_backends() {
    let spec = "seed=11,transfer=120000,launch=120000";
    let timed = fault_log::<TimedBackend>(spec);
    assert!(!timed.is_empty(), "spec should inject something in 48 ops");
    assert_eq!(timed, fault_log::<TimedBackend>(spec));
    assert_eq!(timed, fault_log::<FunctionalBackend>(spec));
    for (_, e) in &timed {
        assert!(e.contains("FaultTransfer") || e.contains("FaultLaunch"));
    }
}

fn dead_dpu_semantics<B: PimBackend>() {
    // DPU 1 dies at op 0: the very first transfer observes the death.
    let mut sys: B = faulty(2, "kill=1@0");
    let err = sys
        .push(vec![HostWrite {
            dpu: 0,
            offset: 0,
            data: vec![2u8; 8],
        }])
        .unwrap_err();
    assert_eq!(err, SimError::DpuDead { dpu: 1 });
    assert!(sys.is_dpu_lost(1));
    assert!(!sys.is_dpu_lost(0));
    assert_eq!(sys.fault_counters().dpu_deaths, 1);

    // Subsequent pushes to survivors succeed; pushes to the corpse fail.
    sys.push(vec![HostWrite {
        dpu: 0,
        offset: 0,
        data: vec![2u8; 8],
    }])
    .unwrap();
    let err = sys
        .push(vec![HostWrite {
            dpu: 1,
            offset: 0,
            data: vec![2u8; 8],
        }])
        .unwrap_err();
    assert_eq!(err, SimError::DpuDead { dpu: 1 });

    // Masked launches skip the corpse; strict launches refuse to run.
    let results = sys
        .execute_labeled_masked("probe", |ctx| {
            let mut t = ctx.tasklet(0)?;
            t.charge(1);
            Ok(ctx.dpu_id())
        })
        .unwrap();
    assert_eq!(results.len(), 2);
    assert!(results[1].is_none());
    assert_eq!(results[0], Some(0));
    let err = sys
        .execute_labeled("probe", |ctx| {
            let mut t = ctx.tasklet(0)?;
            t.charge(1);
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, SimError::DpuDead { dpu: 1 });

    // Gathers tombstone the corpse with zeros but read the survivors.
    let out = sys.gather(0, 8).unwrap();
    assert_eq!(out[0], vec![2u8; 8]);
    assert_eq!(out[1], vec![0u8; 8]);
}

#[test]
fn dead_dpu_semantics_on_timed_backend() {
    dead_dpu_semantics::<TimedBackend>();
}

#[test]
fn dead_dpu_semantics_on_functional_backend() {
    dead_dpu_semantics::<FunctionalBackend>();
}

fn corruption_flips_exactly_one_byte<B: PimBackend>() {
    // corrupt=1000000 fires on every transfer op that has a payload.
    let mut sys: B = faulty(2, "seed=5,corrupt=1000000");
    sys.push(vec![HostWrite {
        dpu: 0,
        offset: 0,
        data: vec![0xFFu8; 16],
    }])
    .unwrap();
    let bank = sys.dpu(0).unwrap().host_read(0, 16).unwrap();
    let flipped: Vec<usize> = (0..16).filter(|&i| bank[i] != 0xFF).collect();
    assert_eq!(flipped.len(), 1, "exactly one byte must differ: {bank:?}");
    assert_eq!(bank[flipped[0]], 0xFF ^ 0xA5);
    assert_eq!(sys.fault_counters().corruptions, 1);
}

#[test]
fn corruption_flips_exactly_one_byte_on_timed_backend() {
    corruption_flips_exactly_one_byte::<TimedBackend>();
}

#[test]
fn corruption_flips_exactly_one_byte_on_functional_backend() {
    corruption_flips_exactly_one_byte::<FunctionalBackend>();
}

#[test]
fn fault_counters_surface_in_system_report_and_serde() {
    let mut sys: TimedBackend = faulty(2, "seed=3,corrupt=1000000,kill=1@1");
    sys.push(vec![HostWrite {
        dpu: 0,
        offset: 0,
        data: vec![9u8; 8],
    }])
    .unwrap();
    let err = sys.gather(0, 8).unwrap_err();
    assert_eq!(err, SimError::DpuDead { dpu: 1 });
    let report = SystemReport::capture(&sys);
    assert_eq!(report.fault_counters.corruptions, 1);
    assert_eq!(report.fault_counters.dpu_deaths, 1);
    let json = serde_json::to_string(&report).unwrap();
    let back: SystemReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn fault_events_show_up_in_the_trace() {
    let mut sys: TimedBackend = faulty(2, "seed=3,corrupt=1000000");
    sys.enable_tracing();
    sys.push(vec![HostWrite {
        dpu: 0,
        offset: 0,
        data: vec![9u8; 8],
    }])
    .unwrap();
    let rendered = sys.trace().render();
    assert!(rendered.contains("fault `corrupt`"), "trace: {rendered}");
    // The chrome export must stay valid with fault instants present.
    let chrome = sys.trace().to_chrome_trace();
    let text = serde_json::to_string(&chrome).unwrap();
    assert!(text.contains("fault:corrupt"));
}

#[test]
fn transient_faults_charge_wasted_time_on_timed_backend() {
    let mut sys: TimedBackend = faulty(2, "seed=1,transfer=1000000");
    let before = sys.phase_times().total();
    let err = sys
        .push(vec![HostWrite {
            dpu: 0,
            offset: 0,
            data: vec![0u8; 1024],
        }])
        .unwrap_err();
    assert!(err.is_transient());
    assert!(
        sys.phase_times().total() > before,
        "failed transfer must still burn bus time"
    );
    // Nothing landed.
    assert_eq!(sys.total_transfer_bytes(), 0);
}

#[test]
fn fault_free_config_is_unchanged_by_the_fault_plane() {
    // The fault plane must be invisible when no plan is set: identical
    // times, traces, and data to a plan-free system.
    let drive = |mut sys: TimedBackend| {
        sys.enable_tracing();
        sys.push(vec![HostWrite {
            dpu: 0,
            offset: 0,
            data: vec![3u8; 64],
        }])
        .unwrap();
        sys.execute(|ctx| {
            let mut t = ctx.tasklet(0)?;
            t.charge(5);
            Ok(())
        })
        .unwrap();
        let trace = sys.trace().clone();
        (trace, sys.phase_times())
    };
    let plain = drive(tiny(2));
    let with_inert_plan = drive(faulty(2, "seed=9"));
    assert_eq!(plain, with_inert_plan);
}

#[test]
fn fault_state_op_counting_is_stable() {
    // Pin the decision stream shape: a plan with everything at 0 ppm but a
    // kill still consumes op indices deterministically.
    let plan = FaultPlan::parse("kill=0@3").unwrap();
    let mut st = FaultState::new(Some(plan), 2);
    assert!(st.is_active());
    for _ in 0..3 {
        assert_eq!(
            st.decide(OpKind::Transfer),
            pim_sim::fault::FaultDecision::None
        );
    }
    assert!(matches!(
        st.decide(OpKind::Launch),
        pim_sim::fault::FaultDecision::Kill { dpu: 0, op: 3 }
    ));
}
