#![warn(missing_docs)]

//! `pim-sim` — a functional + timing simulator of an UPMEM-like
//! processing-in-memory system.
//!
//! The paper's platform is a real UPMEM server: 2560 DPUs (32-bit in-order
//! cores placed in DRAM dies), each owning a 64 MB DRAM bank (MRAM), a
//! 64 KB scratchpad (WRAM), and running up to 16 hardware threads
//! (tasklets) over a fine-grained-multithreaded pipeline. DPUs cannot talk
//! to each other; all data moves through the host CPU.
//!
//! No UPMEM toolchain exists in this environment, so this crate recreates
//! the system in software with two goals:
//!
//! 1. **Constraint fidelity** — kernels written against [`Tasklet`] can
//!    only touch MRAM through explicit bounded DMA transfers into WRAM
//!    buffers they have allocated from the 64 KB scratchpad; MRAM capacity
//!    is enforced; there is no inter-DPU channel. Code shaped by this API
//!    faces the same pressures as real DPU C code.
//! 2. **Timing fidelity** — every DMA, instruction batch, and host
//!    transfer is charged against a [`CostModel`] whose defaults come from
//!    the PrIM characterization of real UPMEM hardware (Gómez-Luna et al.,
//!    IEEE Access 2022). Execution produces *modeled seconds*, reported per
//!    phase exactly as the paper splits them (§4.1: Setup / Sample
//!    Creation / Triangle Count).
//!
//! The simulator is *functional*, not an ISA emulator: kernels are Rust
//! closures that account their work through [`Tasklet::charge`] hooks.
//! DESIGN.md §5 documents the model and its parameters.

pub mod backend;
pub mod cluster;
pub mod config;
pub mod cost;
pub mod dpu;
pub mod energy;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod phase;
pub mod stats;
pub mod system;
pub mod trace;

pub use backend::{FunctionalBackend, PimBackend, TimedBackend};
pub use cluster::{ClusterReport, ClusterSpec, RankCluster};
pub use config::PimConfig;
pub use cost::CostModel;
pub use dpu::Dpu;
pub use energy::{EnergyModel, EnergyReport};
pub use error::{SimError, SimResult};
pub use fault::{DpuKill, FaultCounters, FaultPlan, RankFlaky, RankKill, RANK_AT_COUNT};
pub use kernel::{DpuContext, Tasklet};
pub use phase::{Phase, PhaseTimes};
pub use stats::{
    DpuActivity, LaunchProfile, PhaseKernelCycles, SystemReport, CYCLE_HISTOGRAM_BUCKETS,
};
pub use system::{HostWrite, PimSystem};
pub use trace::{to_chrome_trace_cluster, Trace, TraceEvent};
