//! Seeded, deterministic fault injection for the simulated PIM system.
//!
//! Real UPMEM servers ship with a fraction of their DPUs disabled as faulty,
//! and the PrIM characterization documents transfer errors as facts of life.
//! This module lets tests and experiments replay those conditions exactly:
//! a [`FaultPlan`] drives a splitmix64 stream keyed by a per-system operation
//! counter, so the same plan against the same host-side operation sequence
//! produces the same faults on every run and on every backend.
//!
//! Three fault classes are modeled:
//!
//! * **Transient transfer failures** (`transfer=PPM`): a `push`/`broadcast`/
//!   `gather` call fails atomically with [`crate::SimError::FaultTransfer`];
//!   no data moves, but on the timed backend the wasted bus time is charged.
//! * **Transfer corruption** (`corrupt=PPM`): the operation succeeds but one
//!   byte of one payload is XOR-flipped. Hosts are expected to detect this
//!   with end-to-end checksums and retry.
//! * **Kernel-launch failures** (`launch=PPM`): an `execute` call fails with
//!   [`crate::SimError::FaultLaunch`] before any tasklet runs.
//! * **Permanent DPU death** (`kill=DPU@OP`): from operation index `OP`
//!   onward, the given DPU stops responding. Transfers addressed to it fail
//!   with [`crate::SimError::DpuDead`]; gathers return zeroed tombstones;
//!   kernels skip it. Host banks remain inspectable via [`crate::Dpu`]
//!   accessors — that models a recovery controller reading surviving ranks.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of scheduled DPU deaths in one plan.
pub const MAX_KILLS: usize = 8;

/// Maximum number of rank-level entries (`rank=` / `rank_flaky=`) in one
/// plan.
pub const MAX_RANK_KILLS: usize = 4;

/// Sentinel `at_op` meaning "fire at the first cluster operation of the
/// Triangle Count phase" — spelled `rank=R@count` in the grammar. Rank
/// deaths are decided by the cluster layer (which knows phases), not by
/// per-backend [`FaultState`]s, so the sentinel costs nothing here.
pub const RANK_AT_COUNT: u64 = u64::MAX;

/// Fixed-point denominator for fault probabilities: parts per million.
pub const PPM: u64 = 1_000_000;

/// splitmix64: the same generator `pim-tc` uses for sampling streams. Kept
/// local so the simulator stays dependency-free.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A scheduled permanent DPU death.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpuKill {
    /// Physical DPU id to kill.
    pub dpu: usize,
    /// Operation index (push/broadcast/gather/execute counter) at which the
    /// DPU stops responding. The op with this index is the first to observe
    /// the death.
    pub at_op: u64,
}

/// A scheduled permanent rank outage: every DPU homed on the rank stops
/// responding at once. Executed by the cluster layer (`pim_sim::RankCluster`),
/// which is the only component that knows rank boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankKill {
    /// Rank index to kill (cluster-relative, `0..ranks`).
    pub rank: usize,
    /// Cluster-level operation index at which the rank goes dark, or
    /// [`RANK_AT_COUNT`] for "the first op of the Triangle Count phase".
    pub at_op: u64,
}

/// A rank-wide transient fault load: transfers touching the rank fail with
/// the given probability (retried by the cluster's rank-local retry loop).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankFlaky {
    /// Rank index the flakiness applies to.
    pub rank: usize,
    /// Probability (ppm) that a transfer op on this rank fails transiently.
    pub ppm: u32,
}

/// A deterministic fault-injection schedule. Parsed from a spec string (see
/// [`FaultPlan::parse`]) or built directly; attached to a system via
/// [`crate::PimConfig::fault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault decision stream.
    pub seed: u64,
    /// Probability (ppm) that a transfer op fails atomically.
    pub transfer_fail_ppm: u32,
    /// Probability (ppm) that a transfer op corrupts one payload byte.
    pub corrupt_ppm: u32,
    /// Probability (ppm) that a kernel launch fails before running.
    pub launch_fail_ppm: u32,
    /// Scheduled permanent DPU deaths (dense prefix; `None` slots unused).
    pub kills: [Option<DpuKill>; MAX_KILLS],
    /// Scheduled permanent rank outages (`rank=R@OP`; dense prefix).
    /// Ignored by single systems — the cluster layer executes these.
    pub rank_kills: [Option<RankKill>; MAX_RANK_KILLS],
    /// Rank-wide transient transfer-fault loads (`rank_flaky=R:PPM`; dense
    /// prefix). The cluster derives them into the target rank's plan.
    pub rank_flaky: [Option<RankFlaky>; MAX_RANK_KILLS],
    /// Suggested proactive scrub cadence for the host (`scrub=N`): verify
    /// resident banks every `N` ingest chunks. The simulator injects
    /// nothing for this — it rides along in the plan so one spec string
    /// describes both the fault load and the matching scrub schedule, and
    /// hosts fall back to it when they have no explicit cadence configured.
    pub scrub: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            transfer_fail_ppm: 0,
            corrupt_ppm: 0,
            launch_fail_ppm: 0,
            kills: [None; MAX_KILLS],
            rank_kills: [None; MAX_RANK_KILLS],
            rank_flaky: [None; MAX_RANK_KILLS],
            scrub: None,
        }
    }
}

impl FaultPlan {
    /// Parse a fault spec. Grammar (comma-separated, whitespace ignored):
    ///
    /// ```text
    /// seed=U64 | transfer=PPM | corrupt=PPM | launch=PPM | kill=DPU@OP
    ///   | rank=R@OP | rank_flaky=R:PPM | scrub=N
    /// ```
    ///
    /// `kill=` may repeat up to [`MAX_KILLS`] times; `rank=` and
    /// `rank_flaky=` up to [`MAX_RANK_KILLS`] times each. `rank=R@OP`
    /// schedules a permanent whole-rank outage at cluster op `OP`; the
    /// special spelling `rank=R@count` fires at the first operation of the
    /// Triangle Count phase. `rank_flaky=R:PPM` makes every transfer on
    /// rank `R` fail transiently with the given probability. PPM values are
    /// parts per million in `0..=1_000_000`. `scrub=N` (N ≥ 1) suggests a
    /// host scrub cadence of every `N` ingest chunks. Example:
    /// `seed=7,transfer=2000,kill=3@40,rank=1@count,rank_flaky=2:5000`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let mut nr_kills = 0usize;
        let mut nr_rank_kills = 0usize;
        let mut nr_rank_flaky = 0usize;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item `{part}` is not KEY=VALUE"))?;
            let ppm = |v: &str| -> Result<u32, String> {
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("fault spec: `{v}` is not a ppm value"))?;
                if u64::from(n) > PPM {
                    return Err(format!("fault spec: {n} ppm exceeds {PPM}"));
                }
                Ok(n)
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault spec: `{value}` is not a u64 seed"))?;
                }
                "transfer" => plan.transfer_fail_ppm = ppm(value.trim())?,
                "scrub" => {
                    let n: u64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault spec: `{value}` is not a scrub cadence"))?;
                    if n == 0 {
                        return Err("fault spec: scrub cadence must be >= 1".into());
                    }
                    plan.scrub = Some(n);
                }
                "corrupt" => plan.corrupt_ppm = ppm(value.trim())?,
                "launch" => plan.launch_fail_ppm = ppm(value.trim())?,
                "kill" => {
                    let (dpu, op) = value
                        .trim()
                        .split_once('@')
                        .ok_or_else(|| format!("fault spec: kill wants DPU@OP, got `{value}`"))?;
                    if nr_kills == MAX_KILLS {
                        return Err(format!("fault spec: more than {MAX_KILLS} kills"));
                    }
                    plan.kills[nr_kills] = Some(DpuKill {
                        dpu: dpu
                            .parse()
                            .map_err(|_| format!("fault spec: bad kill DPU id `{dpu}`"))?,
                        at_op: op
                            .parse()
                            .map_err(|_| format!("fault spec: bad kill op index `{op}`"))?,
                    });
                    nr_kills += 1;
                }
                "rank" => {
                    let (rank, op) = value
                        .trim()
                        .split_once('@')
                        .ok_or_else(|| format!("fault spec: rank wants R@OP, got `{value}`"))?;
                    if nr_rank_kills == MAX_RANK_KILLS {
                        return Err(format!("fault spec: more than {MAX_RANK_KILLS} rank kills"));
                    }
                    let at_op = match op {
                        "count" => RANK_AT_COUNT,
                        n => n
                            .parse()
                            .map_err(|_| format!("fault spec: bad rank op index `{n}`"))?,
                    };
                    plan.rank_kills[nr_rank_kills] = Some(RankKill {
                        rank: rank
                            .parse()
                            .map_err(|_| format!("fault spec: bad rank id `{rank}`"))?,
                        at_op,
                    });
                    nr_rank_kills += 1;
                }
                "rank_flaky" => {
                    let (rank, p) = value.trim().split_once(':').ok_or_else(|| {
                        format!("fault spec: rank_flaky wants R:PPM, got `{value}`")
                    })?;
                    if nr_rank_flaky == MAX_RANK_KILLS {
                        return Err(format!(
                            "fault spec: more than {MAX_RANK_KILLS} rank_flaky entries"
                        ));
                    }
                    plan.rank_flaky[nr_rank_flaky] = Some(RankFlaky {
                        rank: rank
                            .parse()
                            .map_err(|_| format!("fault spec: bad rank_flaky rank id `{rank}`"))?,
                        ppm: ppm(p)?,
                    });
                    nr_rank_flaky += 1;
                }
                other => return Err(format!("fault spec: unknown key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Read a plan from the `PIM_SIM_FAULTS` environment variable, if set.
    /// Returns `Ok(None)` when the variable is absent or empty.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("PIM_SIM_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// True when the plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.transfer_fail_ppm == 0
            && self.corrupt_ppm == 0
            && self.launch_fail_ppm == 0
            && self.kills.iter().all(Option::is_none)
            && !self.has_rank_faults()
    }

    /// True when the plan carries rank-level entries (`rank=` /
    /// `rank_flaky=`), which only the cluster layer can execute.
    pub fn has_rank_faults(&self) -> bool {
        self.rank_kills.iter().any(Option::is_some)
            || self.rank_flaky.iter().any(|f| f.is_some_and(|f| f.ppm > 0))
    }
}

impl fmt::Display for FaultPlan {
    /// Renders in the same grammar [`FaultPlan::parse`] accepts.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},transfer={},corrupt={},launch={}",
            self.seed, self.transfer_fail_ppm, self.corrupt_ppm, self.launch_fail_ppm
        )?;
        for kill in self.kills.iter().flatten() {
            write!(f, ",kill={}@{}", kill.dpu, kill.at_op)?;
        }
        for kill in self.rank_kills.iter().flatten() {
            if kill.at_op == RANK_AT_COUNT {
                write!(f, ",rank={}@count", kill.rank)?;
            } else {
                write!(f, ",rank={}@{}", kill.rank, kill.at_op)?;
            }
        }
        for flaky in self.rank_flaky.iter().flatten() {
            write!(f, ",rank_flaky={}:{}", flaky.rank, flaky.ppm)?;
        }
        if let Some(n) = self.scrub {
            write!(f, ",scrub={n}")?;
        }
        Ok(())
    }
}

/// Counters of faults a system actually injected, surfaced through
/// [`crate::SystemReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transfer ops that failed atomically.
    pub transfer_faults: u64,
    /// Transfer ops whose payload had one byte flipped.
    pub corruptions: u64,
    /// Kernel launches that failed before running.
    pub launch_faults: u64,
    /// DPUs that died permanently.
    pub dpu_deaths: u64,
    /// Whole ranks that died permanently (`rank=R@OP`; counted by the
    /// cluster layer on top of any per-DPU deaths).
    pub rank_deaths: u64,
}

impl FaultCounters {
    /// Total number of injected events.
    pub fn total(&self) -> u64 {
        self.transfer_faults
            + self.corruptions
            + self.launch_faults
            + self.dpu_deaths
            + self.rank_deaths
    }
}

/// Which class of host-side operation is asking for a fault decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// `push` / `broadcast` / `gather`.
    Transfer,
    /// `execute` (kernel launch).
    Launch,
}

/// Outcome of consulting the plan for one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    None,
    /// A scheduled DPU death fires on this op; the op fails atomically.
    Kill {
        /// The DPU that just died.
        dpu: usize,
        /// The op index the death fired at.
        op: u64,
    },
    /// The op fails transiently; nothing is applied.
    Fail {
        /// The op index the failure fired at.
        op: u64,
    },
    /// The op succeeds but one payload byte must be flipped.
    Corrupt {
        /// Deterministic salt for choosing the victim byte.
        salt: u64,
        /// The op index the corruption fired at.
        op: u64,
    },
}

/// Per-system fault state: the plan, the operation counter, and which DPUs
/// have died so far. Both backends embed one of these.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: Option<FaultPlan>,
    op_index: u64,
    dead: Vec<bool>,
    counters: FaultCounters,
}

impl FaultState {
    /// State for a freshly allocated system of `nr_dpus` DPUs.
    pub fn new(plan: Option<FaultPlan>, nr_dpus: usize) -> Self {
        let plan = plan.filter(|p| !p.is_inert());
        FaultState {
            plan,
            op_index: 0,
            dead: vec![false; if plan.is_some() { nr_dpus } else { 0 }],
            counters: FaultCounters::default(),
        }
    }

    /// True when a plan is active (some fault could still fire or has fired).
    pub fn is_active(&self) -> bool {
        self.plan.is_some()
    }

    /// Whether `dpu` has died. Always false without an active plan.
    pub fn is_dead(&self, dpu: usize) -> bool {
        self.dead.get(dpu).copied().unwrap_or(false)
    }

    /// Snapshot of dead flags (empty without an active plan).
    pub fn dead_flags(&self) -> &[bool] {
        &self.dead
    }

    /// Counters of injected events so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Deterministic draw for op `op` with stream salt `salt`.
    fn draw(&self, op: u64, salt: u64) -> u64 {
        let plan = self.plan.as_ref().expect("draw without plan");
        splitmix64(
            plan.seed ^ splitmix64(op.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt)),
        )
    }

    /// Consult the plan for the next operation of kind `kind`. Advances the
    /// op counter only when a plan is active, so fault-free systems are
    /// byte-identical to systems built before this module existed.
    pub fn decide(&mut self, kind: OpKind) -> FaultDecision {
        let Some(plan) = self.plan else {
            return FaultDecision::None;
        };
        let op = self.op_index;
        self.op_index += 1;
        for kill in plan.kills.iter().flatten() {
            if kill.at_op <= op && kill.dpu < self.dead.len() && !self.dead[kill.dpu] {
                self.dead[kill.dpu] = true;
                self.counters.dpu_deaths += 1;
                return FaultDecision::Kill { dpu: kill.dpu, op };
            }
        }
        let (fail_ppm, can_corrupt) = match kind {
            OpKind::Transfer => (plan.transfer_fail_ppm, true),
            OpKind::Launch => (plan.launch_fail_ppm, false),
        };
        if self.draw(op, 1) % PPM < u64::from(fail_ppm) {
            match kind {
                OpKind::Transfer => self.counters.transfer_faults += 1,
                OpKind::Launch => self.counters.launch_faults += 1,
            }
            return FaultDecision::Fail { op };
        }
        if can_corrupt && self.draw(op, 2) % PPM < u64::from(plan.corrupt_ppm) {
            return FaultDecision::Corrupt {
                salt: self.draw(op, 3),
                op,
            };
        }
        FaultDecision::None
    }

    /// Record that a corruption decision was actually applied to a payload.
    /// Counted here (not in [`FaultState::decide`]) so ops with nothing to
    /// corrupt don't inflate the counter.
    pub fn count_corruption(&mut self) {
        self.counters.corruptions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let spec = "seed=7,transfer=2000,corrupt=1000,launch=500,kill=3@40,kill=9@95";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.transfer_fail_ppm, 2000);
        assert_eq!(plan.corrupt_ppm, 1000);
        assert_eq!(plan.launch_fail_ppm, 500);
        assert_eq!(plan.kills[0], Some(DpuKill { dpu: 3, at_op: 40 }));
        assert_eq!(plan.kills[1], Some(DpuKill { dpu: 9, at_op: 95 }));
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn scrub_cadence_rides_along_in_the_plan() {
        let plan = FaultPlan::parse("seed=3,kill=1@7,scrub=4").unwrap();
        assert_eq!(plan.scrub, Some(4));
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        // A scrub cadence alone injects nothing: the plan stays inert and
        // fault-free systems remain byte-identical.
        let only_scrub = FaultPlan::parse("scrub=2").unwrap();
        assert!(only_scrub.is_inert());
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("warp=1").is_err());
        assert!(FaultPlan::parse("scrub=0").is_err());
        assert!(FaultPlan::parse("transfer=2000000").is_err());
        assert!(FaultPlan::parse("kill=3").is_err());
        assert!(FaultPlan::parse("kill=a@b").is_err());
        assert!(FaultPlan::parse("rank=1").is_err());
        assert!(FaultPlan::parse("rank=x@3").is_err());
        assert!(FaultPlan::parse("rank=1@soon").is_err());
        assert!(FaultPlan::parse("rank_flaky=1@200").is_err());
        assert!(FaultPlan::parse("rank_flaky=1:2000000").is_err());
        let nine_kills = (0..9)
            .map(|i| format!("kill={i}@0"))
            .collect::<Vec<_>>()
            .join(",");
        assert!(FaultPlan::parse(&nine_kills).is_err());
        let five_ranks = (0..5)
            .map(|i| format!("rank={i}@0"))
            .collect::<Vec<_>>()
            .join(",");
        assert!(FaultPlan::parse(&five_ranks).is_err());
    }

    #[test]
    fn rank_grammar_round_trips_through_display_and_serde() {
        let spec = "seed=7,rank=1@count,rank=2@40,rank_flaky=3:5000";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(
            plan.rank_kills[0],
            Some(RankKill {
                rank: 1,
                at_op: RANK_AT_COUNT
            })
        );
        assert_eq!(plan.rank_kills[1], Some(RankKill { rank: 2, at_op: 40 }));
        assert_eq!(plan.rank_flaky[0], Some(RankFlaky { rank: 3, ppm: 5000 }));
        assert!(plan.has_rank_faults());
        assert!(!plan.is_inert());
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn rank_flaky_with_zero_ppm_stays_inert() {
        let plan = FaultPlan::parse("rank_flaky=0:0").unwrap();
        assert!(!plan.has_rank_faults());
        assert!(plan.is_inert());
    }

    #[test]
    fn decisions_replay_exactly() {
        let plan =
            FaultPlan::parse("seed=42,transfer=200000,corrupt=100000,launch=150000").unwrap();
        let run = || {
            let mut st = FaultState::new(Some(plan), 4);
            (0..256)
                .map(|i| {
                    st.decide(if i % 3 == 0 {
                        OpKind::Launch
                    } else {
                        OpKind::Transfer
                    })
                })
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().any(|d| matches!(d, FaultDecision::Fail { .. })));
        assert!(a.iter().any(|d| matches!(d, FaultDecision::Corrupt { .. })));
    }

    #[test]
    fn kill_fires_once_at_its_op() {
        let plan = FaultPlan::parse("kill=2@5").unwrap();
        let mut st = FaultState::new(Some(plan), 4);
        for op in 0..10u64 {
            let d = st.decide(OpKind::Transfer);
            if op == 5 {
                assert_eq!(d, FaultDecision::Kill { dpu: 2, op: 5 });
            } else {
                assert_eq!(d, FaultDecision::None);
            }
        }
        assert!(st.is_dead(2));
        assert!(!st.is_dead(1));
        assert_eq!(st.counters().dpu_deaths, 1);
    }

    #[test]
    fn inert_plan_disables_the_state() {
        let mut st = FaultState::new(Some(FaultPlan::default()), 4);
        assert!(!st.is_active());
        assert_eq!(st.decide(OpKind::Transfer), FaultDecision::None);
    }

    #[test]
    fn counters_round_trip_through_serde() {
        let c = FaultCounters {
            transfer_faults: 1,
            corruptions: 2,
            launch_faults: 3,
            dpu_deaths: 4,
            rank_deaths: 5,
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: FaultCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        assert_eq!(c.total(), 15);
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::parse("seed=9,transfer=10,kill=1@2").unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
