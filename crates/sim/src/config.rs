//! Hardware configuration of the simulated PIM system.

use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;

/// Capacities and core counts of the simulated system. Defaults match the
/// paper's evaluation platform: 20 P21 DIMMs → 2560 DPUs, each with 64 MB
/// MRAM, 64 KB WRAM, 24 KB IRAM, and 16 tasklets (§2.2, §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PimConfig {
    /// Total PIM cores available in the machine.
    pub total_dpus: usize,
    /// MRAM (DRAM bank) capacity per DPU, bytes.
    pub mram_capacity: u64,
    /// WRAM (scratchpad) capacity per DPU, bytes.
    pub wram_capacity: usize,
    /// Instruction memory per DPU, bytes (tracked for completeness; the
    /// functional simulator does not store instructions).
    pub iram_capacity: usize,
    /// Tasklets (PIM threads) launched per DPU. The paper uses 16.
    pub nr_tasklets: usize,
    /// Host CPU threads used for batch creation. The paper uses 32.
    pub host_threads: usize,
    /// Optional deterministic fault-injection plan. `None` (the default)
    /// simulates a fault-free machine with zero overhead.
    pub fault: Option<FaultPlan>,
}

impl Default for PimConfig {
    fn default() -> Self {
        PimConfig {
            total_dpus: 2560,
            mram_capacity: 64 << 20,
            wram_capacity: 64 << 10,
            iram_capacity: 24 << 10,
            nr_tasklets: 16,
            host_threads: 32,
            fault: None,
        }
    }
}

impl PimConfig {
    /// A deliberately tiny configuration for unit tests: MRAM small enough
    /// that reservoir-sampling paths trigger on graphs of a few thousand
    /// edges, and WRAM small enough that buffer management is exercised.
    pub fn tiny() -> Self {
        PimConfig {
            total_dpus: 64,
            mram_capacity: 64 << 10,
            wram_capacity: 2 << 10,
            iram_capacity: 24 << 10,
            nr_tasklets: 4,
            host_threads: 2,
            fault: None,
        }
    }

    /// WRAM bytes each tasklet can claim under an even split.
    pub fn wram_per_tasklet(&self) -> usize {
        self.wram_capacity / self.nr_tasklets.max(1)
    }

    /// The same machine with a different core count. Used by the serving
    /// layer to carve a leased slice of the physical machine into a
    /// per-tenant cluster: every per-DPU capacity stays identical, only
    /// `total_dpus` changes.
    pub fn with_dpus(self, total_dpus: usize) -> Self {
        PimConfig { total_dpus, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let c = PimConfig::default();
        assert_eq!(c.total_dpus, 2560);
        assert_eq!(c.mram_capacity, 64 * 1024 * 1024);
        assert_eq!(c.wram_capacity, 64 * 1024);
        assert_eq!(c.nr_tasklets, 16);
        assert_eq!(c.host_threads, 32);
    }

    #[test]
    fn wram_split_is_even() {
        let c = PimConfig::default();
        assert_eq!(c.wram_per_tasklet(), 4096);
    }

    #[test]
    fn with_dpus_changes_only_the_core_count() {
        let c = PimConfig::tiny().with_dpus(17);
        assert_eq!(c.total_dpus, 17);
        assert_eq!(c.mram_capacity, PimConfig::tiny().mram_capacity);
        assert_eq!(c.wram_capacity, PimConfig::tiny().wram_capacity);
        assert_eq!(c.nr_tasklets, PimConfig::tiny().nr_tasklets);
    }
}
