//! Execution phases and modeled-time bookkeeping.
//!
//! §4.1 of the paper splits each run into three phases; the simulator
//! accumulates modeled seconds into whichever phase is current, and the
//! host orchestrator additionally folds in *measured* host-side seconds
//! (batch creation is real Rust code running on the real CPU).

use crate::cost::SimSeconds;
use serde::{Deserialize, Serialize};

/// The paper's three timing phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// PIM core allocation, kernel loading, variable initialization, host
    /// array allocation.
    Setup,
    /// Reading the input graph, batch creation, transfers into the PIM
    /// cores' DRAM banks (with reservoir sampling if needed).
    SampleCreation,
    /// Sample organization in the banks, the counting kernel itself, and
    /// result gathering.
    TriangleCount,
}

impl Phase {
    /// The phase's snake_case name as used in metric events and labels
    /// (see `docs/OBSERVABILITY.md`).
    pub fn metric_name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::SampleCreation => "sample_creation",
            Phase::TriangleCount => "triangle_count",
        }
    }
}

/// Per-phase accumulated time, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Setup phase seconds.
    pub setup: SimSeconds,
    /// Sample-creation phase seconds.
    pub sample_creation: SimSeconds,
    /// Triangle-count phase seconds.
    pub triangle_count: SimSeconds,
}

impl PhaseTimes {
    /// Adds `seconds` to the given phase.
    pub fn add(&mut self, phase: Phase, seconds: SimSeconds) {
        match phase {
            Phase::Setup => self.setup += seconds,
            Phase::SampleCreation => self.sample_creation += seconds,
            Phase::TriangleCount => self.triangle_count += seconds,
        }
    }

    /// Seconds recorded for a phase.
    pub fn get(&self, phase: Phase) -> SimSeconds {
        match phase {
            Phase::Setup => self.setup,
            Phase::SampleCreation => self.sample_creation,
            Phase::TriangleCount => self.triangle_count,
        }
    }

    /// Total across all phases.
    pub fn total(&self) -> SimSeconds {
        self.setup + self.sample_creation + self.triangle_count
    }

    /// Total excluding setup — the quantity the paper uses from §4.3
    /// onward ("the setup time will not be considered").
    pub fn without_setup(&self) -> SimSeconds {
        self.sample_creation + self.triangle_count
    }

    /// Element-wise sum (used by the dynamic workload to accumulate over
    /// updates).
    pub fn merged(&self, other: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            setup: self.setup + other.setup,
            sample_creation: self.sample_creation + other.sample_creation,
            triangle_count: self.triangle_count + other.triangle_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get_route_to_the_right_bucket() {
        let mut t = PhaseTimes::default();
        t.add(Phase::Setup, 1.0);
        t.add(Phase::SampleCreation, 2.0);
        t.add(Phase::TriangleCount, 4.0);
        t.add(Phase::TriangleCount, 0.5);
        assert_eq!(t.get(Phase::Setup), 1.0);
        assert_eq!(t.get(Phase::SampleCreation), 2.0);
        assert_eq!(t.get(Phase::TriangleCount), 4.5);
        assert_eq!(t.total(), 7.5);
        assert_eq!(t.without_setup(), 6.5);
    }

    #[test]
    fn merged_sums_elementwise() {
        let a = PhaseTimes {
            setup: 1.0,
            sample_creation: 2.0,
            triangle_count: 3.0,
        };
        let b = PhaseTimes {
            setup: 0.5,
            sample_creation: 0.25,
            triangle_count: 0.125,
        };
        let m = a.merged(&b);
        assert_eq!(m.setup, 1.5);
        assert_eq!(m.sample_creation, 2.25);
        assert_eq!(m.triangle_count, 3.125);
    }
}
