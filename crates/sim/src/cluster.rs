//! Multi-rank clusters: R independent backends behind one [`PimBackend`].
//!
//! The paper's layout caps one UPMEM-style machine at Binom(C+2,3)
//! partitions, so total capacity is fixed by a single rank's DPU budget.
//! Real deployments scale by adding ranks. A [`RankCluster`] owns R
//! backends — each with its own cost accounting, fault-decision stream,
//! and metrics attachment — and presents them as one flat DPU space:
//!
//! * **Global ids.** Partitions keep their triplet ids (`0..P`, split
//!   into contiguous per-rank shards), followed by per-rank spare blocks
//!   (`P + r·s .. P + (r+1)·s`). Orchestrators keep addressing partition
//!   `t` as DPU `t`, exactly as on a single backend.
//! * **Fan-out.** `push` groups host writes by owning rank (ids rewritten
//!   to rank-local), `gather`/`execute` scatter per-rank results back
//!   into global order, and errors are remapped to global ids.
//! * **Time.** Ranks run in parallel in the modeled machine: phase times
//!   are the elementwise **max** over ranks. Host seconds are charged to
//!   every rank, so each rank's clock reads host + its own PIM time and
//!   the max is the cluster wall-clock. Resource totals (bytes, energy,
//!   fault counters) **sum**.
//! * **Identity.** A 1-rank cluster forwards every call verbatim, so
//!   R = 1 is bit-identical to driving the backend directly — counts,
//!   reports, and metric streams.
//!
//! Each rank derives its own [`FaultPlan`] from the cluster-wide plan
//! ([`ClusterSpec::rank_fault_plan`]): rank 0 keeps the original seed
//! (preserving the R = 1 identity), later ranks remix it, and `kill`
//! entries are interpreted as *global* ids and routed to the owning rank
//! — so a kill schedule aimed at one rank leaves the others' decision
//! streams untouched.

use crate::backend::PimBackend;
use crate::config::PimConfig;
use crate::cost::{CostModel, SimSeconds};
use crate::dpu::Dpu;
use crate::energy::EnergyReport;
use crate::error::{SimError, SimResult};
use crate::fault::{
    splitmix64, DpuKill, FaultCounters, FaultPlan, RankKill, MAX_KILLS, MAX_RANK_KILLS,
    RANK_AT_COUNT,
};
use crate::kernel::DpuContext;
use crate::phase::{Phase, PhaseTimes};
use crate::stats::SystemReport;
use crate::system::HostWrite;
use crate::trace::Trace;
use pim_metrics::MetricsHub;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::Arc;

/// Shape of a multi-rank cluster: how many triplet partitions are spread
/// over how many ranks, and how many spare cores each rank reserves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Triplet partitions (global DPU ids `0..partitions`).
    pub partitions: usize,
    /// Spare cores per rank (global ids `partitions + r·s .. + s`).
    pub spares_per_rank: usize,
    /// Number of ranks (≥ 1).
    pub ranks: usize,
}

impl ClusterSpec {
    /// A cluster shape; `ranks` must be at least 1.
    pub fn new(partitions: usize, spares_per_rank: usize, ranks: usize) -> ClusterSpec {
        assert!(ranks >= 1, "a cluster needs at least one rank");
        ClusterSpec {
            partitions,
            spares_per_rank,
            ranks,
        }
    }

    /// Total DPUs across the cluster (partitions + all spare blocks).
    pub fn total_dpus(&self) -> usize {
        self.partitions + self.ranks * self.spares_per_rank
    }

    /// The contiguous partition shard owned by `rank`:
    /// `⌊r·P/R⌋ .. ⌊(r+1)·P/R⌋` (balanced within one partition).
    pub fn partition_range(&self, rank: usize) -> Range<usize> {
        let lo = rank * self.partitions / self.ranks;
        let hi = (rank + 1) * self.partitions / self.ranks;
        lo..hi
    }

    /// The rank owning partition `p`.
    pub fn rank_of_partition(&self, p: usize) -> usize {
        debug_assert!(p < self.partitions);
        let r = ((p + 1) * self.ranks).saturating_sub(1) / self.partitions.max(1);
        debug_assert!(self.partition_range(r).contains(&p));
        r
    }

    /// The rank owning global DPU id `dpu` (partition or spare).
    pub fn rank_of_dpu(&self, dpu: usize) -> usize {
        if dpu < self.partitions {
            self.rank_of_partition(dpu)
        } else {
            (dpu - self.partitions) / self.spares_per_rank.max(1)
        }
    }

    /// DPUs allocated on `rank` (its partition shard plus its spares).
    pub fn rank_nr_dpus(&self, rank: usize) -> usize {
        self.partition_range(rank).len() + self.spares_per_rank
    }

    /// Global ids of `rank`'s spare block.
    pub fn spare_range(&self, rank: usize) -> Range<usize> {
        let lo = self.partitions + rank * self.spares_per_rank;
        lo..lo + self.spares_per_rank
    }

    /// Maps a global DPU id to `(rank, local id)`. Within a rank, locals
    /// `0..shard_len` are the partition shard in order, then the spares.
    pub fn local_id(&self, dpu: usize) -> (usize, usize) {
        debug_assert!(dpu < self.total_dpus());
        if dpu < self.partitions {
            let rank = self.rank_of_partition(dpu);
            (rank, dpu - self.partition_range(rank).start)
        } else {
            let rank = (dpu - self.partitions) / self.spares_per_rank;
            let slot = (dpu - self.partitions) % self.spares_per_rank;
            (rank, self.partition_range(rank).len() + slot)
        }
    }

    /// The flat global → `(rank, local)` route table.
    pub fn route_table(&self) -> Vec<(u32, u32)> {
        (0..self.total_dpus())
            .map(|g| {
                let (r, l) = self.local_id(g);
                (r as u32, l as u32)
            })
            .collect()
    }

    /// Derives `rank`'s fault plan from the cluster-wide plan: rank 0
    /// keeps the original decision-stream seed (so R = 1 is an exact
    /// identity), later ranks remix it; `kill` entries name *global* DPU
    /// ids and are rewritten to rank-local ids on the owning rank only.
    pub fn rank_fault_plan(&self, plan: &FaultPlan, rank: usize) -> FaultPlan {
        if self.ranks == 1 && !plan.has_rank_faults() {
            return *plan;
        }
        let mut derived = *plan;
        if rank > 0 {
            derived.seed = splitmix64(plan.seed ^ rank as u64);
        }
        let mut kills = [None; MAX_KILLS];
        let mut n = 0;
        for kill in plan.kills.into_iter().flatten() {
            if kill.dpu >= self.total_dpus() {
                continue;
            }
            let (r, local) = self.local_id(kill.dpu);
            if r == rank {
                kills[n] = Some(DpuKill {
                    dpu: local,
                    at_op: kill.at_op,
                });
                n += 1;
            }
        }
        derived.kills = kills;
        // `rank_flaky=R:PPM` folds into the target rank's transient
        // transfer rate — the rank's own decision stream and the cluster's
        // rank-local retry loop then model the flaky interconnect.
        for flaky in plan.rank_flaky.into_iter().flatten() {
            if flaky.rank == rank {
                derived.transfer_fail_ppm = derived.transfer_fail_ppm.max(flaky.ppm);
            }
        }
        // Rank-level entries are executed by the cluster layer, never by
        // the per-rank backends; strip them from the derived plans.
        derived.rank_kills = [None; MAX_RANK_KILLS];
        derived.rank_flaky = [None; MAX_RANK_KILLS];
        derived
    }
}

/// Remaps a rank-local [`SimError`] to the cluster's global id space.
fn remap_err(inverse: &[Vec<u32>], total: usize, rank: usize, e: SimError) -> SimError {
    let to_global = |local: usize| -> usize {
        inverse[rank]
            .get(local)
            .map(|&g| g as usize)
            .unwrap_or(local)
    };
    match e {
        SimError::MramOverflow {
            dpu,
            requested,
            capacity,
        } => SimError::MramOverflow {
            dpu: to_global(dpu),
            requested,
            capacity,
        },
        SimError::WramOverflow {
            dpu,
            tasklet,
            requested,
            available,
        } => SimError::WramOverflow {
            dpu: to_global(dpu),
            tasklet,
            requested,
            available,
        },
        SimError::BadAddress { dpu, offset, len } => SimError::BadAddress {
            dpu: to_global(dpu),
            offset,
            len,
        },
        SimError::BadDma { dpu, len, rule } => SimError::BadDma {
            dpu: to_global(dpu),
            len,
            rule,
        },
        SimError::NoSuchDpu { dpu, .. } => SimError::NoSuchDpu {
            dpu: to_global(dpu),
            allocated: total,
        },
        SimError::DpuDead { dpu } => SimError::DpuDead {
            dpu: to_global(dpu),
        },
        other => other,
    }
}

/// Rank-local retries of transient faults before one is surfaced. Each
/// attempt redraws from the rank's own fault stream, so with any sane
/// fault probability the cap is unreachable; it exists as a backstop.
const RANK_RETRY_CAP: u32 = 64;

/// Modeled host seconds charged to the *failing rank only* for each
/// rank-local retry (capped exponential backoff, mirroring the session's
/// policy). The other ranks are not blocked: their op already completed.
const RANK_RETRY_BACKOFF_BASE: f64 = 1e-4;

/// Re-issues `op` against one rank until it stops failing transiently.
///
/// Transient faults (transfer/launch) are decided before any mutation,
/// so the retried op is exact. Retrying *here* — instead of surfacing
/// the error for the session to retry the cluster-level op — is what
/// keeps the machine contract "Err ⇒ nothing mutated" at R > 1: ranks
/// that already completed the op must never see it a second time.
fn retry_transient<B: PimBackend, T>(
    rank: &mut B,
    label: &str,
    mut op: impl FnMut(&mut B) -> SimResult<T>,
) -> SimResult<T> {
    let mut failures = 0u32;
    loop {
        match op(rank) {
            Err(e) if e.is_transient() && failures < RANK_RETRY_CAP => {
                failures += 1;
                let backoff = RANK_RETRY_BACKOFF_BASE * f64::from(1u32 << failures.min(6));
                rank.charge_host_seconds_labeled(&format!("retry:{label}"), backoff);
            }
            other => return other,
        }
    }
}

/// R independent backends presented as one flat [`PimBackend`] (see the
/// module docs for the id layout and time semantics).
pub struct RankCluster<B> {
    spec: ClusterSpec,
    ranks: Vec<B>,
    /// Global DPU id → (rank, local id).
    route: Vec<(u32, u32)>,
    /// Rank → local id → global id.
    inverse: Vec<Vec<u32>>,
    phase: Phase,
    /// `rank=R@OP` entries from the cluster plan that have not fired yet.
    /// Only the cluster layer can execute these: a rank outage exceeds the
    /// per-backend kill budget and crosses its id space.
    pending_rank_kills: Vec<RankKill>,
    /// Which ranks have died (whole-rank failure domain).
    rank_dead: Vec<bool>,
    /// Cluster-level operation counter driving `rank=R@OP` schedules.
    /// Advances only while rank kills are pending, so fault-free clusters
    /// stay byte-identical to pre-rank-fault builds.
    cluster_ops: u64,
    /// Whole-rank deaths injected so far.
    rank_deaths: u64,
    /// Hub for `rank_dead` fault events (stored by `attach_metrics`).
    hub: Option<Arc<MetricsHub>>,
}

impl<B: PimBackend> RankCluster<B> {
    /// Allocates one backend per rank under `spec`, deriving each rank's
    /// fault plan from the cluster-wide one in `config.fault`.
    pub fn allocate_cluster(
        spec: ClusterSpec,
        config: PimConfig,
        cost: CostModel,
    ) -> SimResult<RankCluster<B>> {
        let mut ranks = Vec::with_capacity(spec.ranks);
        for r in 0..spec.ranks {
            let mut rank_config = config;
            if let Some(plan) = config.fault {
                rank_config.fault = Some(spec.rank_fault_plan(&plan, r));
            }
            ranks.push(B::allocate(spec.rank_nr_dpus(r), rank_config, cost)?);
        }
        let mut cluster = RankCluster::from_parts(spec, ranks);
        if let Some(plan) = config.fault {
            cluster.pending_rank_kills = plan
                .rank_kills
                .into_iter()
                .flatten()
                .filter(|k| k.rank < spec.ranks)
                .collect();
        }
        Ok(cluster)
    }

    fn from_parts(spec: ClusterSpec, ranks: Vec<B>) -> RankCluster<B> {
        assert_eq!(ranks.len(), spec.ranks, "one backend per rank");
        let route = spec.route_table();
        let mut inverse: Vec<Vec<u32>> = (0..spec.ranks)
            .map(|r| vec![u32::MAX; spec.rank_nr_dpus(r)])
            .collect();
        for (global, &(r, l)) in route.iter().enumerate() {
            inverse[r as usize][l as usize] = global as u32;
        }
        debug_assert!(inverse.iter().flatten().all(|&g| g != u32::MAX));
        RankCluster {
            spec,
            ranks,
            route,
            inverse,
            phase: Phase::Setup,
            pending_rank_kills: Vec::new(),
            rank_dead: vec![false; spec.ranks],
            cluster_ops: 0,
            rank_deaths: 0,
            hub: None,
        }
    }

    /// The cluster's shape.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of ranks.
    pub fn nr_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// The per-rank backends, rank order (for per-rank reporting).
    pub fn rank_backends(&self) -> &[B] {
        &self.ranks
    }

    /// Each rank's recorded trace, rank order (empty traces unless tracing
    /// was enabled). Feed to [`crate::to_chrome_trace_cluster`] to export
    /// an R>1 run with per-rank process groups.
    pub fn rank_traces(&self) -> Vec<&Trace> {
        self.ranks.iter().map(|b| b.trace()).collect()
    }

    /// The global id of `local` on `rank`.
    pub fn global_id(&self, rank: usize, local: usize) -> usize {
        self.inverse[rank][local] as usize
    }

    /// Whether `rank` has died (whole-rank failure domain).
    pub fn is_rank_dead(&self, rank: usize) -> bool {
        self.rank_dead.get(rank).copied().unwrap_or(false)
    }

    /// True while rank-level faults demand cluster-level bookkeeping:
    /// either kills are still scheduled or a rank has already died. When
    /// false every op takes the zero-overhead fast path, preserving the
    /// R = 1 verbatim identity and fault-free byte-identity.
    fn rank_faults_armed(&self) -> bool {
        !self.pending_rank_kills.is_empty() || self.rank_deaths > 0
    }

    /// Advances the cluster op counter and fires any due `rank=R@OP`
    /// schedules. `rank=R@count` entries fire at the first operation of
    /// the Triangle Count phase.
    fn rank_fault_step(&mut self) {
        if self.pending_rank_kills.is_empty() {
            return;
        }
        let op = self.cluster_ops;
        self.cluster_ops += 1;
        let counting = self.phase == Phase::TriangleCount;
        let mut i = 0;
        while i < self.pending_rank_kills.len() {
            let kill = self.pending_rank_kills[i];
            let due = if kill.at_op == RANK_AT_COUNT {
                counting
            } else {
                kill.at_op <= op
            };
            if !due {
                i += 1;
                continue;
            }
            self.pending_rank_kills.remove(i);
            if !self.rank_dead[kill.rank] {
                self.rank_dead[kill.rank] = true;
                self.rank_deaths += 1;
                if let Some(hub) = &self.hub {
                    hub.with_rank(kill.rank as u32).fault(
                        "rank_dead",
                        self.phase.metric_name(),
                        op,
                        None,
                    );
                }
            }
        }
    }
}

impl<B: PimBackend> PimBackend for RankCluster<B> {
    /// A degenerate single-rank cluster: every call forwards verbatim to
    /// the one backend, making it bit-identical to driving `B` directly.
    fn allocate(nr_dpus: usize, config: PimConfig, cost: CostModel) -> SimResult<Self> {
        RankCluster::allocate_cluster(ClusterSpec::new(nr_dpus, 0, 1), config, cost)
    }

    fn nr_dpus(&self) -> usize {
        self.route.len()
    }

    fn config(&self) -> &PimConfig {
        self.ranks[0].config()
    }

    fn cost(&self) -> &CostModel {
        self.ranks[0].cost()
    }

    fn dpu(&self, id: usize) -> SimResult<&Dpu> {
        let Some(&(r, l)) = self.route.get(id) else {
            return Err(SimError::NoSuchDpu {
                dpu: id,
                allocated: self.route.len(),
            });
        };
        // A dead rank's banks are unreachable — unlike a dead core, whose
        // bank a recovery controller can still read from surviving rank
        // hardware. Recovery must come from replicas or journals.
        if self.rank_dead[r as usize] {
            return Err(SimError::DpuDead { dpu: id });
        }
        self.ranks[r as usize]
            .dpu(l as usize)
            .map_err(|e| remap_err(&self.inverse, self.route.len(), r as usize, e))
    }

    fn dpu_mut(&mut self, id: usize) -> SimResult<&mut Dpu> {
        let Some(&(r, l)) = self.route.get(id) else {
            return Err(SimError::NoSuchDpu {
                dpu: id,
                allocated: self.route.len(),
            });
        };
        if self.rank_dead[r as usize] {
            return Err(SimError::DpuDead { dpu: id });
        }
        let total = self.route.len();
        let inverse = &self.inverse;
        self.ranks[r as usize]
            .dpu_mut(l as usize)
            .map_err(|e| remap_err(inverse, total, r as usize, e))
    }

    fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
        for b in &mut self.ranks {
            b.set_phase(phase);
        }
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    /// Elementwise max over ranks: ranks run in parallel, so the slowest
    /// rank's clock is the cluster's wall-clock for each phase.
    fn phase_times(&self) -> PhaseTimes {
        let mut out = PhaseTimes::default();
        for b in &self.ranks {
            let t = b.phase_times();
            out.setup = out.setup.max(t.setup);
            out.sample_creation = out.sample_creation.max(t.sample_creation);
            out.triangle_count = out.triangle_count.max(t.triangle_count);
        }
        out
    }

    fn enable_tracing(&mut self) {
        for b in &mut self.ranks {
            b.enable_tracing();
        }
    }

    /// With one rank the hub is forwarded untouched (byte-compatible
    /// streams); with more, each rank gets a rank-scoped view of the hub
    /// so its events and series carry a `rank` label.
    fn attach_metrics(&mut self, hub: Arc<MetricsHub>) {
        self.hub = Some(Arc::clone(&hub));
        if self.ranks.len() == 1 {
            self.ranks[0].attach_metrics(hub);
        } else {
            for (r, b) in self.ranks.iter_mut().enumerate() {
                b.attach_metrics(hub.with_rank(r as u32));
            }
        }
    }

    /// Rank 0's trace. Multi-rank launch attribution lives in the
    /// per-rank [`SystemReport`]s of a [`ClusterReport`].
    fn trace(&self) -> &Trace {
        self.ranks[0].trace()
    }

    /// Host work blocks every rank: each rank's clock advances by the
    /// host seconds, so per-rank clocks read host + own PIM time and the
    /// elementwise max stays the true wall-clock.
    fn charge_host_seconds_labeled(&mut self, label: &str, seconds: SimSeconds) {
        for b in &mut self.ranks {
            b.charge_host_seconds_labeled(label, seconds);
        }
    }

    fn push(&mut self, writes: Vec<HostWrite>) -> SimResult<()> {
        let armed = self.rank_faults_armed();
        if self.ranks.len() == 1 && !armed {
            return self.ranks[0].push(writes);
        }
        if armed {
            self.rank_fault_step();
        }
        let mut per_rank: Vec<Vec<HostWrite>> = (0..self.ranks.len()).map(|_| Vec::new()).collect();
        for mut w in writes {
            let Some(&(r, l)) = self.route.get(w.dpu) else {
                return Err(SimError::NoSuchDpu {
                    dpu: w.dpu,
                    allocated: self.route.len(),
                });
            };
            w.dpu = l as usize;
            per_rank[r as usize].push(w);
        }
        // A write aimed at a dead rank fails the batch atomically (before
        // any rank mutates), surfacing the victim's *global* id so the
        // orchestrator can fail the partition over to a surviving rank.
        for (r, batch) in per_rank.iter().enumerate() {
            if self.rank_dead[r] {
                if let Some(w) = batch.first() {
                    return Err(SimError::DpuDead {
                        dpu: self.inverse[r][w.dpu] as usize,
                    });
                }
            }
        }
        let total = self.route.len();
        let inverse = &self.inverse;
        for (r, batch) in per_rank.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            retry_transient(&mut self.ranks[r], "push", |b| b.push(batch.clone()))
                .map_err(|e| remap_err(inverse, total, r, e))?;
        }
        Ok(())
    }

    fn broadcast(&mut self, offset: u64, data: &[u8]) -> SimResult<()> {
        let armed = self.rank_faults_armed();
        if self.ranks.len() == 1 && !armed {
            return self.ranks[0].broadcast(offset, data);
        }
        if armed {
            self.rank_fault_step();
        }
        let total = self.route.len();
        let inverse = &self.inverse;
        let dead = &self.rank_dead;
        for (r, b) in self.ranks.iter_mut().enumerate() {
            // Dead ranks are skipped, mirroring how a single system's
            // broadcast skips dead DPUs instead of failing.
            if dead[r] {
                continue;
            }
            retry_transient(b, "broadcast", |b| b.broadcast(offset, data))
                .map_err(|e| remap_err(inverse, total, r, e))?;
        }
        Ok(())
    }

    fn gather(&mut self, offset: u64, len: u64) -> SimResult<Vec<Vec<u8>>> {
        let armed = self.rank_faults_armed();
        if self.ranks.len() == 1 && !armed {
            return self.ranks[0].gather(offset, len);
        }
        if armed {
            self.rank_fault_step();
        }
        let total = self.route.len();
        let inverse = &self.inverse;
        let dead = &self.rank_dead;
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); total];
        for (r, b) in self.ranks.iter_mut().enumerate() {
            // Dead ranks answer with zeroed tombstones, mirroring how a
            // single system gathers from dead DPUs; verified gathers catch
            // them by checksum.
            if dead[r] {
                for &g in &inverse[r] {
                    out[g as usize] = vec![0u8; len as usize];
                }
                continue;
            }
            let locals = b
                .gather(offset, len)
                .map_err(|e| remap_err(inverse, total, r, e))?;
            for (l, data) in locals.into_iter().enumerate() {
                out[inverse[r][l] as usize] = data;
            }
        }
        Ok(out)
    }

    fn execute_labeled<R, K>(&mut self, label: &str, kernel: K) -> SimResult<Vec<R>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
        Self: Sized,
    {
        let armed = self.rank_faults_armed();
        if self.ranks.len() == 1 && !armed {
            return self.ranks[0].execute_labeled(label, kernel);
        }
        if armed {
            self.rank_fault_step();
        }
        // A strict launch cannot produce results for a dead rank's DPUs;
        // fail atomically with the rank's first global id, before any
        // surviving rank runs the kernel.
        if let Some(r) = (0..self.ranks.len()).find(|&r| self.rank_dead[r]) {
            return Err(SimError::DpuDead {
                dpu: self.inverse[r][0] as usize,
            });
        }
        let total = self.route.len();
        let inverse = &self.inverse;
        let mut out: Vec<Option<R>> = (0..total).map(|_| None).collect();
        for (r, b) in self.ranks.iter_mut().enumerate() {
            let results = retry_transient(b, label, |b| b.execute_labeled(label, &kernel))
                .map_err(|e| remap_err(inverse, total, r, e))?;
            for (l, v) in results.into_iter().enumerate() {
                out[inverse[r][l] as usize] = Some(v);
            }
        }
        Ok(out
            .into_iter()
            .map(|v| v.expect("route table covers every global id"))
            .collect())
    }

    fn execute_labeled_masked<R, K>(&mut self, label: &str, kernel: K) -> SimResult<Vec<Option<R>>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
        Self: Sized,
    {
        let armed = self.rank_faults_armed();
        if self.ranks.len() == 1 && !armed {
            return self.ranks[0].execute_labeled_masked(label, kernel);
        }
        if armed {
            self.rank_fault_step();
        }
        let total = self.route.len();
        let inverse = &self.inverse;
        let dead = &self.rank_dead;
        let mut out: Vec<Option<R>> = (0..total).map(|_| None).collect();
        for (r, b) in self.ranks.iter_mut().enumerate() {
            // A dead rank's slots stay `None` — exactly how masked callers
            // learn about core deaths, now scaled to the rank domain.
            if dead[r] {
                continue;
            }
            let mut failures = 0u32;
            let mut deaths = 0u32;
            let results = loop {
                match b.execute_labeled_masked(label, &kernel) {
                    Ok(res) => break res,
                    Err(e) if e.is_transient() && failures < RANK_RETRY_CAP => {
                        failures += 1;
                        let backoff = RANK_RETRY_BACKOFF_BASE * f64::from(1u32 << failures.min(6));
                        b.charge_host_seconds_labeled(&format!("retry:{label}"), backoff);
                    }
                    // A kill decided at launch time aborts the rank's
                    // launch before any DPU runs. Re-issue: the victim is
                    // now masked to `None`, which is exactly how masked
                    // callers learn about deaths — surfacing the error
                    // instead would make the session repeat the op on
                    // ranks that already completed it.
                    Err(SimError::DpuDead { .. }) if deaths <= MAX_KILLS as u32 => deaths += 1,
                    Err(e) => return Err(remap_err(inverse, total, r, e)),
                }
            };
            for (l, v) in results.into_iter().enumerate() {
                out[inverse[r][l] as usize] = v;
            }
        }
        Ok(out)
    }

    fn is_dpu_lost(&self, dpu: usize) -> bool {
        match self.route.get(dpu) {
            Some(&(r, l)) => {
                self.rank_dead[r as usize] || self.ranks[r as usize].is_dpu_lost(l as usize)
            }
            None => false,
        }
    }

    fn fault_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for b in &self.ranks {
            let c = b.fault_counters();
            total.transfer_faults += c.transfer_faults;
            total.corruptions += c.corruptions;
            total.launch_faults += c.launch_faults;
            total.dpu_deaths += c.dpu_deaths;
            total.rank_deaths += c.rank_deaths;
        }
        total.rank_deaths += self.rank_deaths;
        total
    }

    fn total_mram_used(&self) -> u64 {
        self.ranks.iter().map(|b| b.total_mram_used()).sum()
    }

    fn total_transfer_bytes(&self) -> u64 {
        self.ranks.iter().map(|b| b.total_transfer_bytes()).sum()
    }

    fn total_transfer_seconds(&self) -> SimSeconds {
        self.ranks.iter().map(|b| b.total_transfer_seconds()).sum()
    }

    fn energy_report(&self) -> EnergyReport {
        let mut total = EnergyReport::default();
        for b in &self.ranks {
            let e = b.energy_report();
            total.instr_j += e.instr_j;
            total.dma_j += e.dma_j;
            total.transfer_j += e.transfer_j;
            total.static_j += e.static_j;
        }
        total
    }

    fn release(self) -> PhaseTimes {
        let mut out = PhaseTimes::default();
        for b in self.ranks {
            let t = b.release();
            out.setup = out.setup.max(t.setup);
            out.sample_creation = out.sample_creation.max(t.sample_creation);
            out.triangle_count = out.triangle_count.max(t.triangle_count);
        }
        out
    }
}

/// Per-rank activity plus cluster-wide totals.
///
/// `total` is a flat [`SystemReport`] captured over the whole cluster
/// (per-DPU rows in global id order, resource totals summed); `per_rank`
/// holds each rank's own report, including its traced launches when
/// tracing is enabled. Merging is order-invariant: totals are sums (or
/// maxima) over ranks, never order-dependent folds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterReport {
    /// One report per rank, rank order.
    pub per_rank: Vec<SystemReport>,
    /// The flat cluster-wide report (global id order).
    pub total: SystemReport,
}

impl ClusterReport {
    /// Captures per-rank and merged reports from a cluster.
    pub fn capture<B: PimBackend>(cluster: &RankCluster<B>) -> ClusterReport {
        ClusterReport {
            per_rank: cluster
                .rank_backends()
                .iter()
                .map(SystemReport::capture)
                .collect(),
            total: SystemReport::capture(cluster),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FunctionalBackend;
    use crate::system::PimSystem;

    #[test]
    fn spec_partitions_are_contiguous_and_balanced() {
        for (parts, ranks) in [(10, 4), (7, 3), (1, 1), (5, 5), (120, 4)] {
            let spec = ClusterSpec::new(parts, 2, ranks);
            let mut seen = 0;
            for r in 0..ranks {
                let range = spec.partition_range(r);
                assert_eq!(range.start, seen);
                seen = range.end;
                for p in range.clone() {
                    assert_eq!(spec.rank_of_partition(p), r);
                    let (rr, local) = spec.local_id(p);
                    assert_eq!(rr, r);
                    assert_eq!(p, range.start + local);
                }
                // Shard sizes differ by at most one.
                assert!(range.len().abs_diff(parts / ranks) <= 1);
            }
            assert_eq!(seen, parts);
            assert_eq!(spec.total_dpus(), parts + ranks * 2);
        }
    }

    #[test]
    fn route_table_is_a_bijection() {
        let spec = ClusterSpec::new(11, 2, 3);
        let route = spec.route_table();
        assert_eq!(route.len(), spec.total_dpus());
        let mut hits = vec![0u32; spec.total_dpus()];
        for (global, &(r, l)) in route.iter().enumerate() {
            let back = spec.partition_range(r as usize);
            let shard = back.len();
            // Locals: shard first, spares after.
            assert!((l as usize) < shard + spec.spares_per_rank);
            assert_eq!(spec.local_id(global), (r as usize, l as usize));
            hits[global] += 1;
        }
        assert!(hits.iter().all(|&h| h == 1));
        // Spares live after every partition, per-rank blocks in order.
        for r in 0..3 {
            for g in spec.spare_range(r) {
                assert_eq!(spec.rank_of_dpu(g), r);
            }
        }
    }

    #[test]
    fn single_rank_fault_plan_is_the_identity() {
        let plan = FaultPlan::parse("seed=7,transfer=1000,kill=3@5").unwrap();
        let spec = ClusterSpec::new(6, 1, 1);
        assert_eq!(spec.rank_fault_plan(&plan, 0), plan);
    }

    #[test]
    fn multi_rank_fault_plans_route_kills_and_remix_seeds() {
        let plan = FaultPlan::parse("seed=7,transfer=1000,kill=0@5,kill=9@9").unwrap();
        let spec = ClusterSpec::new(8, 1, 4); // shards of 2, spares at 8..12
        let p0 = spec.rank_fault_plan(&plan, 0);
        assert_eq!(p0.seed, plan.seed, "rank 0 keeps the seed");
        assert_eq!(
            p0.kills[0],
            Some(DpuKill { dpu: 0, at_op: 5 }),
            "global 0 is rank 0 local 0"
        );
        assert_eq!(p0.kills[1], None, "global 9 (a spare) is not rank 0's");
        let p1 = spec.rank_fault_plan(&plan, 1);
        assert_ne!(p1.seed, plan.seed, "later ranks remix the seed");
        assert_eq!(
            p1.kills[0],
            Some(DpuKill { dpu: 2, at_op: 9 }),
            "global 9 = rank 1's spare, local 2 after its 2-partition shard"
        );
        // Rates ride along unchanged.
        assert_eq!(p1.transfer_fail_ppm, plan.transfer_fail_ppm);
    }

    #[test]
    fn cluster_fans_out_and_gathers_in_global_order() {
        let spec = ClusterSpec::new(6, 0, 3);
        let mut cluster = RankCluster::<FunctionalBackend>::allocate_cluster(
            spec,
            PimConfig::tiny(),
            CostModel::default(),
        )
        .unwrap();
        assert_eq!(cluster.nr_dpus(), 6);
        assert_eq!(cluster.nr_ranks(), 3);
        let writes: Vec<HostWrite> = (0..6)
            .map(|dpu| HostWrite {
                dpu,
                offset: 0,
                data: vec![dpu as u8 + 1; 8],
            })
            .collect();
        cluster.push(writes).unwrap();
        let banks = cluster.gather(0, 8).unwrap();
        for (dpu, bank) in banks.iter().enumerate() {
            assert_eq!(bank, &vec![dpu as u8 + 1; 8], "global order preserved");
        }
        // Kernels see rank-local machines; results come back global.
        let sums = cluster
            .execute(|ctx| {
                let mut t = ctx.tasklet(0)?;
                let mut buf = [0u8; 8];
                t.mram_read(0, &mut buf)?;
                Ok(buf.iter().map(|&b| b as u64).sum::<u64>())
            })
            .unwrap();
        assert_eq!(sums, vec![8, 16, 24, 32, 40, 48]);
    }

    #[test]
    fn cluster_times_are_max_and_resources_sum() {
        let spec = ClusterSpec::new(4, 0, 2);
        let mut cluster = RankCluster::<PimSystem>::allocate_cluster(
            spec,
            PimConfig::tiny(),
            CostModel::default(),
        )
        .unwrap();
        cluster.set_phase(Phase::TriangleCount);
        cluster
            .execute(|ctx| {
                let work = (ctx.dpu_id() as u64 + 1) * 100;
                let mut t = ctx.tasklet(0)?;
                t.charge(work);
                Ok(())
            })
            .unwrap();
        let per_rank: Vec<PhaseTimes> = cluster
            .rank_backends()
            .iter()
            .map(|b| b.phase_times())
            .collect();
        let times = cluster.phase_times();
        let max = per_rank
            .iter()
            .map(|t| t.triangle_count)
            .fold(0.0f64, f64::max);
        assert_eq!(times.triangle_count, max);
        let insts: u64 = cluster
            .rank_backends()
            .iter()
            .map(|b| SystemReport::capture(b).total_instructions)
            .sum();
        let report = ClusterReport::capture(&cluster);
        assert_eq!(report.total.total_instructions, insts);
        assert_eq!(report.per_rank.len(), 2);
        // Host seconds are charged to every rank (blocking work).
        let before = cluster.phase_times().triangle_count;
        cluster.charge_host_seconds_labeled("route", 0.5);
        let after = cluster.phase_times();
        assert!((after.triangle_count - before - 0.5).abs() < 1e-12);
        for b in cluster.rank_backends() {
            assert!(b.phase_times().triangle_count >= 0.5);
        }
    }

    #[test]
    fn kills_in_one_rank_leave_other_ranks_untouched() {
        let plan = FaultPlan::parse("seed=11,kill=1@0").unwrap();
        let spec = ClusterSpec::new(4, 0, 2);
        let config = PimConfig {
            fault: Some(plan),
            ..PimConfig::tiny()
        };
        let mut cluster =
            RankCluster::<FunctionalBackend>::allocate_cluster(spec, config, CostModel::default())
                .unwrap();
        // Global DPU 1 (rank 0, local 1) dies at the first op. The op
        // that observes the death errors once — with the *global* id —
        // and later masked launches skip it while rank 1's DPUs
        // (globals 2, 3) keep working.
        let err = cluster
            .execute_labeled("strict", |ctx| {
                let mut t = ctx.tasklet(0)?;
                t.charge(1);
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err, SimError::DpuDead { dpu: 1 });
        let results = cluster
            .execute_labeled_masked("probe", |ctx| {
                let mut t = ctx.tasklet(0)?;
                t.charge(1);
                Ok(ctx.dpu_id())
            })
            .unwrap();
        assert!(results[0].is_some());
        assert!(results[1].is_none(), "killed DPU masked");
        assert!(results[2].is_some() && results[3].is_some());
        assert!(cluster.is_dpu_lost(1));
        assert!(!cluster.is_dpu_lost(2));
        assert_eq!(cluster.fault_counters().dpu_deaths, 1);
    }

    #[test]
    fn rank_death_masks_the_whole_rank_and_counts_once() {
        let plan = FaultPlan::parse("seed=3,rank=0@1").unwrap();
        let spec = ClusterSpec::new(4, 1, 2); // shards of 2, spares at 4, 5
        let config = PimConfig {
            fault: Some(plan),
            ..PimConfig::tiny()
        };
        let mut cluster =
            RankCluster::<FunctionalBackend>::allocate_cluster(spec, config, CostModel::default())
                .unwrap();
        // Op 0: everything alive — baseline data lands on every bank.
        cluster.broadcast(0, &[1u8; 8]).unwrap();
        // Op 1: rank 0 dies — its shard (globals 0, 1) and its spare
        // (global 4) all mask to None; rank 1 keeps working.
        let second = cluster
            .execute_labeled_masked("probe", |ctx| {
                let mut t = ctx.tasklet(0)?;
                t.charge(1);
                Ok(ctx.dpu_id())
            })
            .unwrap();
        assert!(second[0].is_none() && second[1].is_none() && second[4].is_none());
        assert!(second[2].is_some() && second[3].is_some() && second[5].is_some());
        for g in [0usize, 1, 4] {
            assert!(cluster.is_dpu_lost(g));
            assert!(matches!(cluster.dpu(g), Err(SimError::DpuDead { .. })));
        }
        assert!(!cluster.is_dpu_lost(2));
        assert!(cluster.is_rank_dead(0) && !cluster.is_rank_dead(1));
        // One rank death, no per-core deaths; counted exactly once even
        // though three DPUs went dark.
        let counters = cluster.fault_counters();
        assert_eq!(counters.rank_deaths, 1);
        assert_eq!(counters.dpu_deaths, 0);
        // Pushes to the dead rank fail atomically with a global id; the
        // survivors still accept data.
        let err = cluster
            .push(vec![HostWrite {
                dpu: 1,
                offset: 0,
                data: vec![7; 8],
            }])
            .unwrap_err();
        assert_eq!(err, SimError::DpuDead { dpu: 1 });
        cluster
            .push(vec![HostWrite {
                dpu: 2,
                offset: 0,
                data: vec![9; 8],
            }])
            .unwrap();
        // Gathers answer zeroed tombstones for the dead rank.
        let banks = cluster.gather(0, 8).unwrap();
        assert_eq!(banks[1], vec![0u8; 8]);
        assert_eq!(banks[2], vec![9u8; 8]);
        assert_eq!(banks[3], vec![1u8; 8], "survivor baseline intact");
        // Strict launches refuse to run while a rank is dark.
        assert!(matches!(
            cluster.execute_labeled("strict", |ctx| {
                let mut t = ctx.tasklet(0)?;
                t.charge(1);
                Ok(())
            }),
            Err(SimError::DpuDead { .. })
        ));
    }

    #[test]
    fn system_report_captures_through_a_dead_rank_with_zeroed_rows() {
        let plan = FaultPlan::parse("seed=3,rank=0@1").unwrap();
        let spec = ClusterSpec::new(4, 1, 2);
        let config = PimConfig {
            fault: Some(plan),
            ..PimConfig::tiny()
        };
        let mut cluster =
            RankCluster::<FunctionalBackend>::allocate_cluster(spec, config, CostModel::default())
                .unwrap();
        cluster.broadcast(0, &[1u8; 8]).unwrap(); // op 0: all alive
        cluster.gather(0, 8).unwrap(); // op 1: rank 0 dies
        assert!(cluster.is_rank_dead(0));
        // The dead rank's cores are unreachable, so the report must not
        // panic trying to read their counters: their rows are zeroed
        // tombstones and the id space stays dense.
        let report = SystemReport::capture(&cluster);
        assert_eq!(report.per_dpu.len(), cluster.nr_dpus());
        for row in &report.per_dpu {
            assert_eq!(row.dpu, report.per_dpu[row.dpu].dpu);
            let lost = cluster.is_dpu_lost(row.dpu);
            if lost {
                assert_eq!((row.instructions, row.dma_bytes, row.mram_used), (0, 0, 0));
            }
        }
        // Survivor rows keep their real MRAM occupancy from the broadcast.
        assert!(report.per_dpu.iter().any(|r| r.mram_used > 0));
        assert_eq!(report.fault_counters.rank_deaths, 1);
    }

    #[test]
    fn rank_at_count_fires_on_the_first_count_phase_op() {
        let plan = FaultPlan::parse("seed=3,rank=1@count").unwrap();
        let spec = ClusterSpec::new(4, 0, 2);
        let config = PimConfig {
            fault: Some(plan),
            ..PimConfig::tiny()
        };
        let mut cluster =
            RankCluster::<FunctionalBackend>::allocate_cluster(spec, config, CostModel::default())
                .unwrap();
        // Many ops outside the Triangle Count phase: nothing fires.
        cluster.set_phase(Phase::SampleCreation);
        for _ in 0..8 {
            cluster.broadcast(0, &[1u8; 4]).unwrap();
        }
        assert_eq!(cluster.fault_counters().rank_deaths, 0);
        // The first op inside the count phase kills the rank.
        cluster.set_phase(Phase::TriangleCount);
        let banks = cluster.gather(0, 4).unwrap();
        assert_eq!(cluster.fault_counters().rank_deaths, 1);
        assert!(cluster.is_rank_dead(1));
        assert_eq!(banks[3], vec![0u8; 4], "dead shard tombstoned");
        assert_eq!(banks[0], vec![1u8; 4], "survivor data intact");
    }

    #[test]
    fn rank_flaky_derives_into_the_target_ranks_transfer_rate() {
        let plan = FaultPlan::parse("seed=5,transfer=100,rank_flaky=1:40000").unwrap();
        let spec = ClusterSpec::new(4, 0, 2);
        let p0 = spec.rank_fault_plan(&plan, 0);
        let p1 = spec.rank_fault_plan(&plan, 1);
        assert_eq!(p0.transfer_fail_ppm, 100, "other ranks keep the base rate");
        assert_eq!(p1.transfer_fail_ppm, 40000, "flaky rank gets the max");
        assert!(
            !p0.has_rank_faults() && !p1.has_rank_faults(),
            "rank entries never reach per-rank backends"
        );
        // The cluster's rank-local retry loop absorbs the flakiness: data
        // lands despite a 4% transfer-fault rate on rank 1.
        let config = PimConfig {
            fault: Some(plan),
            ..PimConfig::tiny()
        };
        let mut cluster =
            RankCluster::<FunctionalBackend>::allocate_cluster(spec, config, CostModel::default())
                .unwrap();
        for round in 0..32u8 {
            cluster.broadcast(0, &[round; 8]).unwrap();
        }
        // Inspect banks out-of-band (no fault path) so the check itself
        // cannot trip the flaky interconnect.
        for g in 0..cluster.nr_dpus() {
            let bank = cluster.dpu(g).unwrap().host_read(0, 8).unwrap();
            assert_eq!(bank, vec![31u8; 8]);
        }
        assert!(
            cluster.fault_counters().transfer_faults > 0,
            "a 4% rate over 32 broadcasts should have injected something"
        );
    }
}
