//! The host-side view of the PIM machine: allocation, transfers, kernel
//! launches, and phase timing.

use crate::config::PimConfig;
use crate::cost::{CostModel, SimSeconds};
use crate::dpu::Dpu;
use crate::error::{SimError, SimResult};
use crate::fault::{FaultCounters, FaultDecision, FaultState, OpKind};
use crate::kernel::{DpuContext, Pod};
use crate::phase::{Phase, PhaseTimes};
use pim_metrics::{LaunchObs, MetricsHub};
use rayon::prelude::*;
use std::sync::Arc;

/// XOR mask applied to the victim byte of a corrupted payload.
pub(crate) const CORRUPT_MASK: u8 = 0xA5;

/// One host→DPU write request in a parallel transfer batch.
#[derive(Clone, Debug)]
pub struct HostWrite {
    /// Target DPU id.
    pub dpu: usize,
    /// Destination MRAM offset (bytes).
    pub offset: u64,
    /// Payload.
    pub data: Vec<u8>,
}

/// A set of allocated PIM cores plus the machinery to drive them:
/// rank-parallel transfers, SPMD kernel launches, and per-phase modeled
/// time (§4.1: Setup / Sample Creation / Triangle Count).
pub struct PimSystem {
    config: PimConfig,
    cost: CostModel,
    energy: crate::energy::EnergyModel,
    dpus: Vec<Dpu>,
    times: PhaseTimes,
    phase: Phase,
    transfer_bytes: u64,
    transfer_seconds: SimSeconds,
    trace: crate::trace::Trace,
    fault: FaultState,
    metrics: Option<Arc<MetricsHub>>,
}

impl PimSystem {
    /// Allocates `nr_dpus` PIM cores, charging the setup cost (core
    /// allocation + kernel binary load) to the Setup phase.
    pub fn allocate(nr_dpus: usize, config: PimConfig, cost: CostModel) -> SimResult<Self> {
        if nr_dpus > config.total_dpus {
            return Err(SimError::TooManyDpus {
                requested: nr_dpus,
                available: config.total_dpus,
            });
        }
        let dpus = (0..nr_dpus)
            .map(|id| Dpu::new(id, config.mram_capacity, config.nr_tasklets))
            .collect();
        let mut sys = PimSystem {
            config,
            cost,
            energy: crate::energy::EnergyModel::default(),
            dpus,
            times: PhaseTimes::default(),
            phase: Phase::Setup,
            transfer_bytes: 0,
            transfer_seconds: 0.0,
            trace: crate::trace::Trace::default(),
            fault: FaultState::new(config.fault, nr_dpus),
            metrics: None,
        };
        let setup = sys.cost.setup_seconds(nr_dpus);
        sys.times.add(Phase::Setup, setup);
        sys.trace.record(crate::trace::TraceEvent::Allocate {
            nr_dpus,
            seconds: setup,
        });
        Ok(sys)
    }

    /// Allocates with default config and cost model.
    pub fn allocate_default(nr_dpus: usize) -> SimResult<Self> {
        Self::allocate(nr_dpus, PimConfig::default(), CostModel::default())
    }

    /// Number of allocated PIM cores.
    #[inline]
    pub fn nr_dpus(&self) -> usize {
        self.dpus.len()
    }

    /// Hardware configuration in effect.
    #[inline]
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Cost model in effect.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Read-only access to a DPU (host-side inspection; tests and result
    /// gathering).
    pub fn dpu(&self, id: usize) -> SimResult<&Dpu> {
        self.dpus.get(id).ok_or(SimError::NoSuchDpu {
            dpu: id,
            allocated: self.dpus.len(),
        })
    }

    /// Mutable access to a DPU bank, bypassing the modeled transfer path
    /// (see [`crate::PimBackend::dpu_mut`]): the chaos-harness hook for
    /// planting out-of-band bank corruption. Charges no time and injects
    /// no faults.
    pub fn dpu_mut(&mut self, id: usize) -> SimResult<&mut Dpu> {
        let allocated = self.dpus.len();
        self.dpus
            .get_mut(id)
            .ok_or(SimError::NoSuchDpu { dpu: id, allocated })
    }

    /// Switches the phase that subsequent costs accrue to.
    pub fn set_phase(&mut self, phase: Phase) {
        if self.phase != phase {
            self.trace
                .record(crate::trace::TraceEvent::PhaseChange { to: phase });
            if let Some(hub) = &self.metrics {
                hub.phase_change(phase.metric_name());
            }
        }
        self.phase = phase;
    }

    /// Attaches a live metrics hub: every transfer, launch, host span, and
    /// fault from now on is emitted as a structured event and folded into
    /// the hub's registry. The time accrued so far (allocation) is emitted
    /// as one `alloc` event, so the stream's seconds close against
    /// [`PimSystem::phase_times`]. Attach immediately after allocation for
    /// a complete stream.
    pub fn attach_metrics(&mut self, hub: Arc<MetricsHub>) {
        hub.alloc(self.dpus.len() as u64, self.times.total());
        self.metrics = Some(hub);
    }

    /// Starts recording an event timeline (see [`crate::trace`]).
    ///
    /// If enabled after allocation (the common case — the system records
    /// its own `Allocate` event only when tracing is already on), the
    /// time accrued so far is backfilled as one `Allocate` event, so the
    /// timeline's total always matches [`PimSystem::phase_times`].
    pub fn enable_tracing(&mut self) {
        let first_enable = !self.trace.is_enabled();
        self.trace.enable();
        if first_enable && self.trace.events().is_empty() {
            self.trace.record(crate::trace::TraceEvent::Allocate {
                nr_dpus: self.dpus.len(),
                seconds: self.times.total(),
            });
        }
    }

    /// The recorded timeline (empty unless tracing was enabled).
    pub fn trace(&self) -> &crate::trace::Trace {
        &self.trace
    }

    /// Phase currently accruing time.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Modeled per-phase times so far.
    pub fn phase_times(&self) -> PhaseTimes {
        self.times
    }

    /// Folds measured host-side seconds (e.g. batch-creation wall time)
    /// into the current phase. The paper's timings include host work; the
    /// simulator cannot model arbitrary host Rust code, so the orchestrator
    /// measures it and accounts it here.
    pub fn charge_host_seconds(&mut self, seconds: SimSeconds) {
        self.charge_host_seconds_labeled("host", seconds);
    }

    /// Like [`PimSystem::charge_host_seconds`], but names the span so
    /// traces show *which* host work the time went to.
    pub fn charge_host_seconds_labeled(&mut self, label: &str, seconds: SimSeconds) {
        self.times.add(self.phase, seconds);
        self.trace.record(crate::trace::TraceEvent::HostWork {
            label: label.to_string(),
            seconds,
            phase: self.phase,
        });
        if let Some(hub) = &self.metrics {
            hub.host(label, self.phase.metric_name(), seconds);
        }
    }

    /// Executes a rank-parallel CPU→PIM transfer batch. Data lands in MRAM
    /// immediately; modeled time (max per-DPU payload vs. aggregate
    /// bandwidth cap) accrues to the current phase.
    pub fn push(&mut self, writes: Vec<HostWrite>) -> SimResult<()> {
        let mut per_dpu_bytes = vec![0u64; self.dpus.len()];
        for w in &writes {
            if w.dpu >= self.dpus.len() {
                return Err(SimError::NoSuchDpu {
                    dpu: w.dpu,
                    allocated: self.dpus.len(),
                });
            }
            if self.fault.is_dead(w.dpu) {
                return Err(SimError::DpuDead { dpu: w.dpu });
            }
            per_dpu_bytes[w.dpu] += w.data.len() as u64;
        }
        let decision = self.fault.decide(OpKind::Transfer);
        match decision {
            FaultDecision::Kill { dpu, op } => {
                self.record_fault("kill", op, Some(dpu));
                return Err(SimError::DpuDead { dpu });
            }
            FaultDecision::Fail { op } => {
                // The bus time is wasted even though nothing lands; the
                // zero-byte span keeps the trace summing to the clock.
                let seconds = self.cost.transfer_seconds(&per_dpu_bytes);
                self.transfer_seconds += seconds;
                self.times.add(self.phase, seconds);
                self.trace.record(crate::trace::TraceEvent::Push {
                    writes: writes.len(),
                    bytes: 0,
                    seconds,
                    phase: self.phase,
                });
                self.record_fault("transfer_fail", op, None);
                if let Some(hub) = &self.metrics {
                    hub.transfer(
                        "push",
                        self.phase.metric_name(),
                        writes.len() as u64,
                        0,
                        seconds,
                        false,
                    );
                }
                return Err(SimError::FaultTransfer { op });
            }
            FaultDecision::None | FaultDecision::Corrupt { .. } => {}
        }
        for w in &writes {
            self.dpus[w.dpu].host_write(w.offset, &w.data)?;
        }
        if let FaultDecision::Corrupt { salt, op } = decision {
            let victims: Vec<usize> = (0..writes.len())
                .filter(|&i| !writes[i].data.is_empty())
                .collect();
            if !victims.is_empty() {
                let w = &writes[victims[salt as usize % victims.len()]];
                let byte = (salt >> 8) % w.data.len() as u64;
                let flipped = w.data[byte as usize] ^ CORRUPT_MASK;
                self.dpus[w.dpu].host_write(w.offset + byte, &[flipped])?;
                self.fault.count_corruption();
                self.record_fault("corrupt", op, Some(w.dpu));
            }
        }
        let bytes = per_dpu_bytes.iter().sum::<u64>();
        self.transfer_bytes += bytes;
        let seconds = self.cost.transfer_seconds(&per_dpu_bytes);
        self.transfer_seconds += seconds;
        self.times.add(self.phase, seconds);
        self.trace.record(crate::trace::TraceEvent::Push {
            writes: writes.len(),
            bytes,
            seconds,
            phase: self.phase,
        });
        if let Some(hub) = &self.metrics {
            hub.transfer(
                "push",
                self.phase.metric_name(),
                writes.len() as u64,
                bytes,
                seconds,
                true,
            );
        }
        Ok(())
    }

    /// Records a fault event on the trace and the metrics stream.
    fn record_fault(&mut self, kind: &'static str, op: u64, dpu: Option<usize>) {
        self.trace.record(crate::trace::TraceEvent::Fault {
            kind: kind.to_string(),
            op,
            dpu,
            phase: self.phase,
        });
        if let Some(hub) = &self.metrics {
            hub.fault(kind, self.phase.metric_name(), op, dpu.map(|d| d as u64));
        }
    }

    /// Whether the fault plan has permanently killed `dpu`. Always false on
    /// a fault-free system.
    pub fn is_dpu_lost(&self, dpu: usize) -> bool {
        self.fault.is_dead(dpu)
    }

    /// Counters of faults injected so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault.counters()
    }

    /// Broadcasts the same payload to every DPU at the same offset (UPMEM
    /// supports this as an optimized parallel transfer; modeled as one
    /// rank-parallel batch).
    ///
    /// The payload is shared across DPUs — nothing is cloned per core, so
    /// broadcasting a large sample to thousands of DPUs costs one write
    /// per bank, not one allocation per bank. Cost accounting is identical
    /// to [`PimSystem::push`] with the equivalent per-DPU write batch.
    pub fn broadcast(&mut self, offset: u64, data: &[u8]) -> SimResult<()> {
        let decision = self.fault.decide(OpKind::Transfer);
        let live: Vec<bool> = (0..self.dpus.len())
            .map(|d| !self.fault.is_dead(d))
            .collect();
        let per_dpu_bytes: Vec<u64> = live
            .iter()
            .map(|&alive| if alive { data.len() as u64 } else { 0 })
            .collect();
        match decision {
            FaultDecision::Kill { dpu, op } => {
                self.record_fault("kill", op, Some(dpu));
                return Err(SimError::DpuDead { dpu });
            }
            FaultDecision::Fail { op } => {
                let seconds = self.cost.transfer_seconds(&per_dpu_bytes);
                self.transfer_seconds += seconds;
                self.times.add(self.phase, seconds);
                self.trace.record(crate::trace::TraceEvent::Push {
                    writes: self.dpus.len(),
                    bytes: 0,
                    seconds,
                    phase: self.phase,
                });
                self.record_fault("transfer_fail", op, None);
                if let Some(hub) = &self.metrics {
                    hub.transfer(
                        "broadcast",
                        self.phase.metric_name(),
                        self.dpus.len() as u64,
                        0,
                        seconds,
                        false,
                    );
                }
                return Err(SimError::FaultTransfer { op });
            }
            FaultDecision::None | FaultDecision::Corrupt { .. } => {}
        }
        for dpu in &mut self.dpus {
            if live[dpu.id()] {
                dpu.host_write(offset, data)?;
            }
        }
        if let FaultDecision::Corrupt { salt, op } = decision {
            let victims: Vec<usize> = (0..self.dpus.len()).filter(|&d| live[d]).collect();
            if !victims.is_empty() && !data.is_empty() {
                let d = victims[salt as usize % victims.len()];
                let byte = (salt >> 8) % data.len() as u64;
                let flipped = data[byte as usize] ^ CORRUPT_MASK;
                self.dpus[d].host_write(offset + byte, &[flipped])?;
                self.fault.count_corruption();
                self.record_fault("corrupt", op, Some(d));
            }
        }
        let bytes = per_dpu_bytes.iter().sum::<u64>();
        self.transfer_bytes += bytes;
        let seconds = self.cost.transfer_seconds(&per_dpu_bytes);
        self.transfer_seconds += seconds;
        self.times.add(self.phase, seconds);
        self.trace.record(crate::trace::TraceEvent::Push {
            writes: self.dpus.len(),
            bytes,
            seconds,
            phase: self.phase,
        });
        if let Some(hub) = &self.metrics {
            hub.transfer(
                "broadcast",
                self.phase.metric_name(),
                self.dpus.len() as u64,
                bytes,
                seconds,
                true,
            );
        }
        Ok(())
    }

    /// Gathers `len` bytes at `offset` from every DPU (PIM→CPU transfer),
    /// charging one rank-parallel batch.
    pub fn gather(&mut self, offset: u64, len: u64) -> SimResult<Vec<Vec<u8>>> {
        let decision = self.fault.decide(OpKind::Transfer);
        match decision {
            FaultDecision::Kill { dpu, op } => {
                self.record_fault("kill", op, Some(dpu));
                return Err(SimError::DpuDead { dpu });
            }
            FaultDecision::Fail { op } => {
                let seconds = self.cost.transfer_seconds(&vec![len; self.dpus.len()]);
                self.transfer_seconds += seconds;
                self.times.add(self.phase, seconds);
                self.trace.record(crate::trace::TraceEvent::Gather {
                    bytes: 0,
                    seconds,
                    phase: self.phase,
                });
                self.record_fault("transfer_fail", op, None);
                if let Some(hub) = &self.metrics {
                    hub.transfer(
                        "gather",
                        self.phase.metric_name(),
                        self.dpus.len() as u64,
                        0,
                        seconds,
                        false,
                    );
                }
                return Err(SimError::FaultTransfer { op });
            }
            FaultDecision::None | FaultDecision::Corrupt { .. } => {}
        }
        // Dead DPUs answer with zeroed tombstones so positional indexing by
        // DPU id keeps working for the survivors.
        let out: SimResult<Vec<Vec<u8>>> = self
            .dpus
            .iter()
            .map(|d| {
                if self.fault.is_dead(d.id()) {
                    Ok(vec![0u8; len as usize])
                } else {
                    d.host_read(offset, len)
                }
            })
            .collect();
        let mut out = out?;
        if let FaultDecision::Corrupt { salt, op } = decision {
            let victims: Vec<usize> = (0..out.len())
                .filter(|&d| !self.fault.is_dead(d) && !out[d].is_empty())
                .collect();
            if !victims.is_empty() {
                let d = victims[salt as usize % victims.len()];
                let byte = (salt >> 8) as usize % out[d].len();
                out[d][byte] ^= CORRUPT_MASK;
                self.fault.count_corruption();
                self.record_fault("corrupt", op, Some(d));
            }
        }
        let per_dpu_bytes = vec![len; self.dpus.len()];
        let bytes = len * self.dpus.len() as u64;
        self.transfer_bytes += bytes;
        let seconds = self.cost.transfer_seconds(&per_dpu_bytes);
        self.transfer_seconds += seconds;
        self.times.add(self.phase, seconds);
        self.trace.record(crate::trace::TraceEvent::Gather {
            bytes,
            seconds,
            phase: self.phase,
        });
        if let Some(hub) = &self.metrics {
            hub.transfer(
                "gather",
                self.phase.metric_name(),
                self.dpus.len() as u64,
                bytes,
                seconds,
                true,
            );
        }
        Ok(out)
    }

    /// Typed convenience over [`PimSystem::gather`]: one `T` per DPU read
    /// from the same offset.
    pub fn gather_one<T: Pod>(&mut self, offset: u64) -> SimResult<Vec<T>> {
        Ok(self
            .gather(offset, T::BYTES as u64)?
            .into_iter()
            .map(|bytes| T::read_le(&bytes))
            .collect())
    }

    /// Launches an SPMD kernel on every allocated DPU (in parallel on the
    /// host via rayon — DPUs are independent hardware). Returns each DPU's
    /// result in id order.
    ///
    /// Modeled time: `launch_overhead + max over DPUs of dpu_cycles`,
    /// because the host waits for the slowest PIM core — this is exactly
    /// the load-imbalance sensitivity the paper's edge-distribution
    /// analysis (§3.1) is about.
    pub fn execute<R, K>(&mut self, kernel: K) -> SimResult<Vec<R>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
    {
        self.execute_labeled("kernel", kernel)
    }

    /// Like [`PimSystem::execute`], but names the launch so traces and
    /// [`crate::SystemReport`] launch profiles can attribute time to a
    /// specific kernel (e.g. `"sort"` vs `"count"`).
    pub fn execute_labeled<R, K>(&mut self, label: &str, kernel: K) -> SimResult<Vec<R>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
    {
        let results = self.execute_labeled_masked(label, kernel)?;
        results
            .into_iter()
            .enumerate()
            .map(|(dpu, r)| r.ok_or(SimError::DpuDead { dpu }))
            .collect()
    }

    /// Like [`PimSystem::execute_labeled`], but tolerant of permanently dead
    /// DPUs: their slots come back as `None` instead of failing the launch.
    /// Fault-aware orchestrators use this to keep driving the survivors.
    pub fn execute_labeled_masked<R, K>(
        &mut self,
        label: &str,
        kernel: K,
    ) -> SimResult<Vec<Option<R>>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
    {
        match self.fault.decide(OpKind::Launch) {
            FaultDecision::Kill { dpu, op } => {
                self.record_fault("kill", op, Some(dpu));
                return Err(SimError::DpuDead { dpu });
            }
            FaultDecision::Fail { op } => {
                // The launch round-trip is wasted before any tasklet runs;
                // the zero-cycle span keeps the trace summing to the clock.
                let seconds = self.cost.launch_overhead;
                self.times.add(self.phase, seconds);
                self.trace.record(crate::trace::TraceEvent::Kernel {
                    label: label.to_string(),
                    max_cycles: 0,
                    seconds,
                    phase: self.phase,
                    per_dpu_cycles: Vec::new(),
                    per_dpu_instructions: Vec::new(),
                    per_dpu_dma_bytes: Vec::new(),
                });
                self.record_fault("launch_fail", op, None);
                if let Some(hub) = &self.metrics {
                    hub.launch(LaunchObs {
                        label: label.to_string(),
                        phase: self.phase.metric_name(),
                        dpus: 0,
                        max_cycles: 0,
                        mean_cycles: 0.0,
                        instructions: 0,
                        dma_bytes: 0,
                        seconds,
                        ok: false,
                    });
                }
                return Err(SimError::FaultLaunch { op });
            }
            FaultDecision::None | FaultDecision::Corrupt { .. } => {}
        }
        let config = self.config;
        let cost = self.cost;
        let dead: Vec<bool> = self.fault.dead_flags().to_vec();
        let results: SimResult<Vec<(Option<R>, u64)>> = self
            .dpus
            .par_iter_mut()
            .map(|dpu| {
                if dead.get(dpu.id()).copied().unwrap_or(false) {
                    return Ok((None, 0));
                }
                dpu.reset_kernel_counters();
                let mut ctx = DpuContext {
                    dpu,
                    config: &config,
                    cost: &cost,
                };
                let r = kernel(&mut ctx)?;
                let cycles = cost.dpu_cycles(&ctx.dpu.tasklet_instr, ctx.dpu.dma_cycles);
                Ok((Some(r), cycles))
            })
            .collect();
        let results = results?;
        let max_cycles = results.iter().map(|(_, c)| *c).max().unwrap_or(0);
        let seconds = self.cost.launch_overhead + self.cost.cycles_to_seconds(max_cycles);
        self.times.add(self.phase, seconds);
        if let Some(hub) = &self.metrics {
            let is_dead = |id: usize| dead.get(id).copied().unwrap_or(false);
            let live = results.iter().filter(|(r, _)| r.is_some()).count() as u64;
            let cycle_sum: u64 = results.iter().map(|(_, c)| *c).sum();
            let instructions: u64 = self
                .dpus
                .iter()
                .filter(|d| !is_dead(d.id()))
                .map(|d| d.tasklet_instr.iter().sum::<u64>())
                .sum();
            let dma_bytes: u64 = self
                .dpus
                .iter()
                .filter(|d| !is_dead(d.id()))
                .map(|d| d.kernel_dma_bytes)
                .sum();
            hub.launch(LaunchObs {
                label: label.to_string(),
                phase: self.phase.metric_name(),
                dpus: live,
                max_cycles,
                mean_cycles: if live > 0 {
                    cycle_sum as f64 / live as f64
                } else {
                    0.0
                },
                instructions,
                dma_bytes,
                seconds,
                ok: true,
            });
            // Stream the full per-DPU distribution (dead cores as zeros —
            // the same vectors the trace's Kernel events carry) so the
            // hist event's p50/p99/imbalance reconcile exactly with the
            // final report's LaunchProfile.
            let per_dpu_cycles: Vec<u64> = results.iter().map(|(_, c)| *c).collect();
            let per_dpu_dma: Vec<u64> = self
                .dpus
                .iter()
                .map(|d| {
                    if is_dead(d.id()) {
                        0
                    } else {
                        d.kernel_dma_bytes
                    }
                })
                .collect();
            hub.launch_hist(
                label,
                self.phase.metric_name(),
                &per_dpu_cycles,
                &per_dpu_dma,
            );
        }
        if self.trace.is_enabled() {
            // The per-kernel counters were reset at launch, so right now
            // they describe exactly this launch. Dead DPUs report zeros;
            // their counters are stale leftovers from before they died.
            let is_dead = |id: usize| dead.get(id).copied().unwrap_or(false);
            self.trace.record(crate::trace::TraceEvent::Kernel {
                label: label.to_string(),
                max_cycles,
                seconds,
                phase: self.phase,
                per_dpu_cycles: results.iter().map(|(_, c)| *c).collect(),
                per_dpu_instructions: self
                    .dpus
                    .iter()
                    .map(|d| {
                        if is_dead(d.id()) {
                            0
                        } else {
                            d.tasklet_instr.iter().sum()
                        }
                    })
                    .collect(),
                per_dpu_dma_bytes: self
                    .dpus
                    .iter()
                    .map(|d| {
                        if is_dead(d.id()) {
                            0
                        } else {
                            d.kernel_dma_bytes
                        }
                    })
                    .collect(),
            });
        }
        Ok(results.into_iter().map(|(r, _)| r).collect())
    }

    /// Sum of MRAM bytes in use across all DPUs.
    pub fn total_mram_used(&self) -> u64 {
        self.dpus.iter().map(Dpu::mram_used).sum()
    }

    /// Overrides the energy coefficients (defaults are UPMEM-calibrated).
    pub fn set_energy_model(&mut self, energy: crate::energy::EnergyModel) {
        self.energy = energy;
    }

    /// Total CPU<->PIM bytes moved so far.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.transfer_bytes
    }

    /// Total modeled seconds spent on CPU<->PIM transfers so far. Together
    /// with [`PimSystem::total_transfer_bytes`] this gives the achieved
    /// transfer bandwidth, comparable against the cost model's aggregate
    /// bandwidth cap.
    pub fn total_transfer_seconds(&self) -> SimSeconds {
        self.transfer_seconds
    }

    /// Energy totals for everything executed so far, derived from the
    /// lifetime activity counters and the modeled runtime.
    pub fn energy_report(&self) -> crate::energy::EnergyReport {
        let instructions: u64 = self.dpus.iter().map(Dpu::lifetime_instructions).sum();
        let dma_bytes: u64 = self.dpus.iter().map(Dpu::lifetime_dma_bytes).sum();
        self.energy.report(
            instructions,
            dma_bytes,
            self.transfer_bytes,
            self.dpus.len(),
            self.times.total(),
        )
    }

    /// Frees the PIM cores, returning the final phase times. (Dropping the
    /// system works too; this makes the hand-off explicit in orchestrator
    /// code, mirroring `dpu_free` in the UPMEM SDK.)
    pub fn release(self) -> PhaseTimes {
        self.times
    }
}

/// Encodes a typed slice into the little-endian byte layout used in MRAM.
pub fn encode_slice<T: Pod>(items: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; items.len() * T::BYTES];
    for (i, item) in items.iter().enumerate() {
        item.write_le(&mut out[i * T::BYTES..]);
    }
    out
}

/// Decodes MRAM bytes into a typed vector. Panics if `bytes` is not a
/// multiple of the element size.
pub fn decode_slice<T: Pod>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(bytes.len() % T::BYTES, 0, "byte length not element-aligned");
    bytes.chunks_exact(T::BYTES).map(T::read_le).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system() -> PimSystem {
        PimSystem::allocate(4, PimConfig::tiny(), CostModel::default()).unwrap()
    }

    #[test]
    fn allocation_respects_machine_size() {
        let cfg = PimConfig::tiny();
        assert!(PimSystem::allocate(64, cfg, CostModel::default()).is_ok());
        assert!(matches!(
            PimSystem::allocate(65, cfg, CostModel::default()),
            Err(SimError::TooManyDpus { .. })
        ));
    }

    #[test]
    fn allocation_charges_setup() {
        let sys = small_system();
        assert!(sys.phase_times().setup > 0.0);
        assert_eq!(sys.phase_times().sample_creation, 0.0);
    }

    #[test]
    fn push_then_kernel_then_gather() {
        let mut sys = small_system();
        sys.set_phase(Phase::SampleCreation);
        // Each DPU gets its id repeated as u32s.
        let writes = (0..4)
            .map(|dpu| HostWrite {
                dpu,
                offset: 0,
                data: encode_slice(&[dpu as u32; 8]),
            })
            .collect();
        sys.push(writes).unwrap();

        sys.set_phase(Phase::TriangleCount);
        // Kernel: every tasklet sums the values, tasklet 0 writes the sum.
        let results = sys
            .execute(|ctx| {
                let mut t = ctx.tasklet(0)?;
                let mut buf = [0u32; 8];
                t.mram_read(0, &mut buf)?;
                t.charge(8);
                let sum: u32 = buf.iter().sum();
                t.mram_write_one(64, sum)?;
                Ok(sum)
            })
            .unwrap();
        assert_eq!(results, vec![0, 8, 16, 24]);

        let gathered: Vec<u32> = sys.gather_one(64).unwrap();
        assert_eq!(gathered, vec![0, 8, 16, 24]);

        let t = sys.phase_times();
        assert!(t.sample_creation > 0.0);
        assert!(t.triangle_count > 0.0);
    }

    #[test]
    fn broadcast_reaches_every_dpu() {
        let mut sys = small_system();
        sys.broadcast(0, &encode_slice(&[7u32, 9])).unwrap();
        for id in 0..4 {
            let bytes = sys.dpu(id).unwrap().host_read(0, 8).unwrap();
            assert_eq!(decode_slice::<u32>(&bytes), vec![7, 9]);
        }
    }

    #[test]
    fn broadcast_matches_equivalent_push_batch() {
        // The shared-payload broadcast must be observationally identical
        // to pushing one cloned write per DPU: same MRAM contents, same
        // modeled time, same byte accounting, same trace event.
        let payload = encode_slice(&[3u32, 1, 4, 1, 5, 9, 2, 6]);

        let mut via_broadcast = small_system();
        via_broadcast.enable_tracing();
        via_broadcast.set_phase(Phase::SampleCreation);
        via_broadcast.broadcast(16, &payload).unwrap();

        let mut via_push = small_system();
        via_push.enable_tracing();
        via_push.set_phase(Phase::SampleCreation);
        let writes = (0..4)
            .map(|dpu| HostWrite {
                dpu,
                offset: 16,
                data: payload.clone(),
            })
            .collect();
        via_push.push(writes).unwrap();

        assert_eq!(via_broadcast.phase_times(), via_push.phase_times());
        assert_eq!(
            via_broadcast.total_transfer_bytes(),
            via_push.total_transfer_bytes()
        );
        assert_eq!(
            via_broadcast.total_transfer_seconds(),
            via_push.total_transfer_seconds()
        );
        assert_eq!(via_broadcast.trace(), via_push.trace());
        for id in 0..4 {
            assert_eq!(
                via_broadcast.dpu(id).unwrap().host_read(16, 32).unwrap(),
                via_push.dpu(id).unwrap().host_read(16, 32).unwrap()
            );
        }
    }

    #[test]
    fn transfer_seconds_accumulate_across_directions() {
        let mut sys = small_system();
        assert_eq!(sys.total_transfer_seconds(), 0.0);
        sys.broadcast(0, &[0u8; 64]).unwrap();
        let after_push = sys.total_transfer_seconds();
        assert!(after_push > 0.0);
        sys.gather(0, 64).unwrap();
        assert!(sys.total_transfer_seconds() > after_push);
    }

    #[test]
    fn kernel_error_propagates() {
        let mut sys = small_system();
        let err = sys
            .execute(|ctx| {
                let mut t = ctx.tasklet(0)?;
                // Read from uninitialized MRAM.
                t.mram_read_one::<u64>(1 << 20).map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::MramOverflow { .. } | SimError::BadAddress { .. }
        ));
    }

    #[test]
    fn execute_time_tracks_slowest_dpu() {
        let mut sys = small_system();
        sys.set_phase(Phase::TriangleCount);
        let before = sys.phase_times().triangle_count;
        sys.execute(|ctx| {
            // DPU 3 does 100x the work of the others.
            let work = if ctx.dpu_id() == 3 { 100_000 } else { 1_000 };
            let mut t = ctx.tasklet(0)?;
            t.charge(work);
            Ok(())
        })
        .unwrap();
        let elapsed = sys.phase_times().triangle_count - before;
        let cost = CostModel::default();
        let expected = cost.launch_overhead + cost.cycles_to_seconds(100_000 * 11);
        assert!(
            (elapsed - expected).abs() < 1e-9,
            "elapsed {elapsed} expected {expected}"
        );
    }

    #[test]
    fn push_rejects_unknown_dpu() {
        let mut sys = small_system();
        let err = sys
            .push(vec![HostWrite {
                dpu: 99,
                offset: 0,
                data: vec![0],
            }])
            .unwrap_err();
        assert!(matches!(err, SimError::NoSuchDpu { dpu: 99, .. }));
    }

    #[test]
    fn host_seconds_accrue_to_current_phase() {
        let mut sys = small_system();
        sys.set_phase(Phase::SampleCreation);
        sys.charge_host_seconds(1.25);
        assert_eq!(sys.phase_times().sample_creation, 1.25);
    }

    #[test]
    fn encode_decode_round_trip() {
        let xs = [1u64, u64::MAX, 42];
        assert_eq!(decode_slice::<u64>(&encode_slice(&xs)), xs.to_vec());
    }

    #[test]
    #[should_panic(expected = "element-aligned")]
    fn decode_rejects_ragged_bytes() {
        decode_slice::<u32>(&[1, 2, 3]);
    }

    #[test]
    fn release_returns_times() {
        let sys = small_system();
        let t = sys.release();
        assert!(t.setup > 0.0);
    }
}
