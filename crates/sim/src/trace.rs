//! Execution tracing: an event timeline of transfers and kernel launches.
//!
//! Disabled by default (zero overhead beyond a branch); enable with
//! [`crate::PimSystem::enable_tracing`] to capture what the host did to
//! the PIM system and what each step cost. The harness and examples use
//! it to explain phase times; it is also the easiest way to see the §4.1
//! phase structure of a run at a glance via [`Trace::render`], and
//! [`Trace::to_chrome_trace`] exports the same timeline for
//! `chrome://tracing` / Perfetto.

use crate::cost::SimSeconds;
use crate::phase::Phase;
use serde::{Deserialize, Serialize};

/// One recorded simulator event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// System allocation. When tracing is enabled after allocation, this
    /// event carries all time accrued before tracing started, so the
    /// timeline always sums to the system's total modeled seconds.
    Allocate {
        /// PIM cores allocated.
        nr_dpus: usize,
        /// Modeled seconds charged.
        seconds: SimSeconds,
    },
    /// A rank-parallel CPU→PIM transfer batch.
    Push {
        /// Individual writes in the batch.
        writes: usize,
        /// Total payload bytes.
        bytes: u64,
        /// Modeled seconds charged.
        seconds: SimSeconds,
        /// Phase the cost accrued to.
        phase: Phase,
    },
    /// A rank-parallel PIM→CPU gather.
    Gather {
        /// Total payload bytes.
        bytes: u64,
        /// Modeled seconds charged.
        seconds: SimSeconds,
        /// Phase the cost accrued to.
        phase: Phase,
    },
    /// An SPMD kernel launch, with the per-DPU execution breakdown the
    /// cost model derived it from.
    Kernel {
        /// Orchestrator-assigned name for this launch (e.g. `"count"`).
        label: String,
        /// Wall cycles of the slowest DPU.
        max_cycles: u64,
        /// Modeled seconds charged (launch overhead included).
        seconds: SimSeconds,
        /// Phase the cost accrued to.
        phase: Phase,
        /// Modeled wall cycles per DPU, indexed by DPU id.
        per_dpu_cycles: Vec<u64>,
        /// Instructions executed per DPU (summed over tasklets).
        per_dpu_instructions: Vec<u64>,
        /// MRAM↔WRAM DMA traffic per DPU in bytes.
        per_dpu_dma_bytes: Vec<u64>,
    },
    /// Measured host-side work folded into the clock.
    HostWork {
        /// Orchestrator-assigned name for this span (e.g. `"route_edges"`).
        label: String,
        /// Measured seconds.
        seconds: SimSeconds,
        /// Phase the cost accrued to.
        phase: Phase,
    },
    /// The orchestrator switched phases.
    PhaseChange {
        /// New phase.
        to: Phase,
    },
    /// The fault plan injected a fault (see [`crate::fault`]). Carries no
    /// cost of its own — failed ops charge their wasted time through their
    /// regular event kinds.
    Fault {
        /// Fault class: `"transfer_fail"`, `"corrupt"`, `"launch_fail"`,
        /// or `"kill"`.
        kind: String,
        /// Operation index the fault fired at.
        op: u64,
        /// Affected DPU, when the fault targets one.
        dpu: Option<usize>,
        /// Phase the faulted operation ran in.
        phase: Phase,
    },
}

impl TraceEvent {
    /// Seconds this event contributed to the clock (0 for phase changes).
    pub fn seconds(&self) -> SimSeconds {
        match self {
            TraceEvent::Allocate { seconds, .. }
            | TraceEvent::Push { seconds, .. }
            | TraceEvent::Gather { seconds, .. }
            | TraceEvent::Kernel { seconds, .. }
            | TraceEvent::HostWork { seconds, .. } => *seconds,
            TraceEvent::PhaseChange { .. } | TraceEvent::Fault { .. } => 0.0,
        }
    }

    /// Phase this event's cost accrued to. Allocation always bills Setup;
    /// phase changes carry no cost and report the phase they switch *to*.
    pub fn phase(&self) -> Phase {
        match self {
            TraceEvent::Allocate { .. } => Phase::Setup,
            TraceEvent::Push { phase, .. }
            | TraceEvent::Gather { phase, .. }
            | TraceEvent::Kernel { phase, .. }
            | TraceEvent::HostWork { phase, .. }
            | TraceEvent::Fault { phase, .. } => *phase,
            TraceEvent::PhaseChange { to } => *to,
        }
    }
}

/// A recorded event timeline.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

/// The three §4.1 phases double as Chrome trace "threads" (tracks).
const PHASE_TRACKS: [(Phase, u64); 3] = [
    (Phase::Setup, 0),
    (Phase::SampleCreation, 1),
    (Phase::TriangleCount, 2),
];

fn phase_track(phase: Phase) -> u64 {
    PHASE_TRACKS
        .iter()
        .find(|(p, _)| *p == phase)
        .map(|(_, tid)| *tid)
        .unwrap_or(0)
}

fn obj(fields: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl Trace {
    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub(crate) fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total modeled seconds across recorded events.
    pub fn total_seconds(&self) -> SimSeconds {
        self.events.iter().map(TraceEvent::seconds).sum()
    }

    /// Renders a human-readable timeline.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut clock = 0.0f64;
        for e in &self.events {
            clock += e.seconds();
            let _ = match e {
                TraceEvent::Allocate { nr_dpus, seconds } => writeln!(
                    out,
                    "[{clock:>10.6}s] allocate {nr_dpus} DPUs (+{seconds:.6}s)"
                ),
                TraceEvent::Push { writes, bytes, seconds, phase } => writeln!(
                    out,
                    "[{clock:>10.6}s] push {writes} writes / {bytes} B (+{seconds:.6}s) [{phase:?}]"
                ),
                TraceEvent::Gather { bytes, seconds, phase } => writeln!(
                    out,
                    "[{clock:>10.6}s] gather {bytes} B (+{seconds:.6}s) [{phase:?}]"
                ),
                TraceEvent::Kernel { label, max_cycles, seconds, phase, .. } => writeln!(
                    out,
                    "[{clock:>10.6}s] kernel `{label}` max {max_cycles} cycles (+{seconds:.6}s) [{phase:?}]"
                ),
                TraceEvent::HostWork { label, seconds, phase } => writeln!(
                    out,
                    "[{clock:>10.6}s] host `{label}` (+{seconds:.6}s) [{phase:?}]"
                ),
                TraceEvent::PhaseChange { to } => {
                    writeln!(out, "[{clock:>10.6}s] --- phase: {to:?} ---")
                }
                TraceEvent::Fault { kind, op, dpu, phase } => match dpu {
                    Some(d) => writeln!(
                        out,
                        "[{clock:>10.6}s] !! fault `{kind}` op {op} dpu {d} [{phase:?}]"
                    ),
                    None => {
                        writeln!(out, "[{clock:>10.6}s] !! fault `{kind}` op {op} [{phase:?}]")
                    }
                },
            };
        }
        out
    }

    /// Exports the timeline in the Chrome trace-event JSON format
    /// (loadable in `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// Layout: one "thread" (track) per §4.1 phase, named via `"M"`
    /// metadata events. Each timed event becomes an `"X"` complete span on
    /// its phase's track at the cumulative modeled clock, with `ts`/`dur`
    /// in microseconds; phase changes become `"i"` instants; each kernel
    /// launch additionally emits a `"C"` counter sample of DPU utilization
    /// (mean over max per-DPU cycles, in percent) so load imbalance shows
    /// up as a dip in the counter track. The summed `dur` of all spans
    /// equals [`Trace::total_seconds`] (and, when tracing covered the whole
    /// run, the system's `PhaseTimes::total()`) scaled to microseconds.
    pub fn to_chrome_trace(&self) -> serde_json::Value {
        use serde_json::Value;
        let mut events: Vec<Value> = Vec::new();
        self.append_chrome_events(1, None, &mut events);
        obj(vec![
            ("traceEvents", Value::Array(events)),
            ("displayTimeUnit", Value::Str("ms".into())),
        ])
    }

    /// Appends this timeline's Chrome trace events under process `pid`.
    /// When `rank` is set, the per-phase track metadata additionally
    /// carries the rank id (used by [`to_chrome_trace_cluster`]).
    fn append_chrome_events(
        &self,
        pid: u64,
        rank: Option<u64>,
        events: &mut Vec<serde_json::Value>,
    ) {
        use serde_json::Value;
        for (phase, tid) in PHASE_TRACKS {
            let mut args = vec![("name", Value::Str(format!("{phase:?}")))];
            if let Some(r) = rank {
                args.push(("rank", Value::U64(r)));
            }
            events.push(obj(vec![
                ("name", Value::Str("thread_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::U64(pid)),
                ("tid", Value::U64(tid)),
                ("args", obj(args)),
            ]));
        }

        let mut clock_us = 0.0f64;
        for e in &self.events {
            let dur_us = e.seconds() * 1e6;
            let tid = phase_track(e.phase());
            let (name, args) = match e {
                TraceEvent::Allocate { nr_dpus, .. } => (
                    "allocate".to_string(),
                    vec![("nr_dpus", Value::U64(*nr_dpus as u64))],
                ),
                TraceEvent::Push { writes, bytes, .. } => (
                    "push".to_string(),
                    vec![
                        ("writes", Value::U64(*writes as u64)),
                        ("bytes", Value::U64(*bytes)),
                    ],
                ),
                TraceEvent::Gather { bytes, .. } => {
                    ("gather".to_string(), vec![("bytes", Value::U64(*bytes))])
                }
                TraceEvent::Kernel {
                    label,
                    max_cycles,
                    per_dpu_cycles,
                    per_dpu_instructions,
                    per_dpu_dma_bytes,
                    ..
                } => (
                    format!("kernel:{label}"),
                    vec![
                        ("max_cycles", Value::U64(*max_cycles)),
                        ("nr_dpus", Value::U64(per_dpu_cycles.len() as u64)),
                        (
                            "total_instructions",
                            Value::U64(per_dpu_instructions.iter().sum()),
                        ),
                        (
                            "total_dma_bytes",
                            Value::U64(per_dpu_dma_bytes.iter().sum()),
                        ),
                    ],
                ),
                TraceEvent::HostWork { label, .. } => (format!("host:{label}"), vec![]),
                TraceEvent::PhaseChange { to } => {
                    events.push(obj(vec![
                        ("name", Value::Str(format!("phase:{to:?}"))),
                        ("ph", Value::Str("i".into())),
                        ("pid", Value::U64(pid)),
                        ("tid", Value::U64(tid)),
                        ("ts", Value::F64(clock_us)),
                        ("s", Value::Str("g".into())),
                    ]));
                    continue;
                }
                TraceEvent::Fault { kind, op, dpu, .. } => {
                    let mut args = vec![("op", Value::U64(*op))];
                    if let Some(d) = dpu {
                        args.push(("dpu", Value::U64(*d as u64)));
                    }
                    events.push(obj(vec![
                        ("name", Value::Str(format!("fault:{kind}"))),
                        ("ph", Value::Str("i".into())),
                        ("pid", Value::U64(pid)),
                        ("tid", Value::U64(tid)),
                        ("ts", Value::F64(clock_us)),
                        ("s", Value::Str("g".into())),
                        ("args", obj(args)),
                    ]));
                    continue;
                }
            };
            events.push(obj(vec![
                ("name", Value::Str(name)),
                ("ph", Value::Str("X".into())),
                ("pid", Value::U64(pid)),
                ("tid", Value::U64(tid)),
                ("ts", Value::F64(clock_us)),
                ("dur", Value::F64(dur_us)),
                ("args", obj(args)),
            ]));
            if let TraceEvent::Kernel {
                per_dpu_cycles,
                max_cycles,
                ..
            } = e
            {
                let utilization = if *max_cycles == 0 || per_dpu_cycles.is_empty() {
                    100.0
                } else {
                    let mean =
                        per_dpu_cycles.iter().sum::<u64>() as f64 / per_dpu_cycles.len() as f64;
                    100.0 * mean / *max_cycles as f64
                };
                events.push(obj(vec![
                    ("name", Value::Str("dpu_utilization_pct".into())),
                    ("ph", Value::Str("C".into())),
                    ("pid", Value::U64(pid)),
                    ("ts", Value::F64(clock_us)),
                    ("args", obj(vec![("utilization", Value::F64(utilization))])),
                ]));
            }
            clock_us += dur_us;
        }
    }
}

/// Exports several ranks' timelines as one Chrome trace, grouping each
/// rank's per-phase tracks under its own process (`pid = rank + 1`, named
/// `"rank N"` via `process_name` metadata, with the rank id repeated in
/// every track's metadata args). This keeps an R>1 cluster trace readable:
/// tracks are grouped per rank instead of flattened into one process with
/// global ids.
pub fn to_chrome_trace_cluster(traces: &[&Trace]) -> serde_json::Value {
    use serde_json::Value;
    let mut events: Vec<Value> = Vec::new();
    for (r, trace) in traces.iter().enumerate() {
        let pid = r as u64 + 1;
        events.push(obj(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(pid)),
            (
                "args",
                obj(vec![
                    ("name", Value::Str(format!("rank {r}"))),
                    ("rank", Value::U64(r as u64)),
                ]),
            ),
        ]));
        trace.append_chrome_events(pid, Some(r as u64), &mut events);
    }
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, HostWrite, PimConfig, PimSystem};

    fn traced_system() -> PimSystem {
        let mut sys = PimSystem::allocate(2, PimConfig::tiny(), CostModel::default()).unwrap();
        sys.enable_tracing();
        sys.set_phase(crate::Phase::SampleCreation);
        sys.push(vec![
            HostWrite {
                dpu: 0,
                offset: 0,
                data: vec![0; 8],
            },
            HostWrite {
                dpu: 1,
                offset: 0,
                data: vec![0; 8],
            },
        ])
        .unwrap();
        sys.set_phase(crate::Phase::TriangleCount);
        sys.execute_labeled("probe", |ctx| {
            let work = 10 * (ctx.dpu_id() as u64 + 1);
            let mut t = ctx.tasklet(0)?;
            t.charge(work);
            Ok(())
        })
        .unwrap();
        sys.gather(0, 8).unwrap();
        sys
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut sys = PimSystem::allocate(2, PimConfig::tiny(), CostModel::default()).unwrap();
        sys.push(vec![HostWrite {
            dpu: 0,
            offset: 0,
            data: vec![0; 8],
        }])
        .unwrap();
        assert!(sys.trace().events().is_empty());
    }

    #[test]
    fn enabled_trace_captures_the_pipeline() {
        let sys = traced_system();
        let events = sys.trace().events();
        // enable_tracing() backfills the pre-enable Setup time.
        assert!(matches!(events[0], TraceEvent::Allocate { nr_dpus: 2, .. }));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Push {
                bytes: 16,
                writes: 2,
                ..
            }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Kernel { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Gather { .. })));
        // Rendered timeline mentions each step.
        let rendered = sys.trace().render();
        assert!(rendered.contains("push"));
        assert!(rendered.contains("kernel `probe`"));
        assert!(rendered.contains("gather"));
        assert!(sys.trace().total_seconds() > 0.0);
    }

    #[test]
    fn kernel_events_carry_per_dpu_breakdowns() {
        let sys = traced_system();
        let kernel = sys
            .trace()
            .events()
            .iter()
            .find_map(|e| match e {
                TraceEvent::Kernel {
                    label,
                    per_dpu_cycles,
                    per_dpu_instructions,
                    per_dpu_dma_bytes,
                    max_cycles,
                    ..
                } => Some((
                    label,
                    per_dpu_cycles,
                    per_dpu_instructions,
                    per_dpu_dma_bytes,
                    max_cycles,
                )),
                _ => None,
            })
            .unwrap();
        let (label, cycles, instr, dma, max_cycles) = kernel;
        assert_eq!(label, "probe");
        assert_eq!(instr, &vec![10, 20]);
        assert_eq!(dma, &vec![0, 0]);
        assert_eq!(cycles.len(), 2);
        // DPU 1 charged twice the instructions, so it is the slowest.
        assert!(cycles[1] > cycles[0]);
        assert_eq!(*max_cycles, cycles[1]);
    }

    #[test]
    fn trace_serde_round_trips() {
        let sys = traced_system();
        let trace = sys.trace().clone();
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn trace_total_matches_phase_times() {
        let sys = traced_system();
        // Tracing was enabled right after allocation, so the timeline
        // (including the backfilled Allocate) accounts for all time.
        let total = sys.phase_times().total();
        assert!((sys.trace().total_seconds() - total).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let sys = traced_system();
        let chrome = sys.trace().to_chrome_trace();

        // Round-trips through the JSON text form.
        let text = serde_json::to_string(&chrome).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, chrome);

        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());

        let mut last_ts = f64::NEG_INFINITY;
        let mut span_dur_us = 0.0f64;
        let mut saw_counter = false;
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "X" | "M" | "C" | "i"), "unexpected ph {ph}");
            if ph == "M" {
                continue;
            }
            let ts = ev.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last_ts, "timestamps must be monotonic");
            last_ts = ts;
            if ph == "X" {
                span_dur_us += ev.get("dur").unwrap().as_f64().unwrap();
            }
            if ph == "C" {
                saw_counter = true;
                let pct = ev
                    .get("args")
                    .unwrap()
                    .get("utilization")
                    .unwrap()
                    .as_f64()
                    .unwrap();
                assert!((0.0..=100.0).contains(&pct));
            }
        }
        assert!(
            saw_counter,
            "kernel launches must emit utilization counters"
        );

        // Summed span durations cover the full modeled runtime.
        let total = sys.phase_times().total();
        assert!(
            (span_dur_us / 1e6 - total).abs() < 1e-9,
            "span sum {span_dur_us} µs vs total {total} s"
        );

        // All three phase tracks are named.
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(
            thread_names,
            vec!["Setup", "SampleCreation", "TriangleCount"]
        );
    }

    #[test]
    fn cluster_chrome_trace_groups_tracks_per_rank() {
        let sys0 = traced_system();
        let sys1 = traced_system();
        let chrome = to_chrome_trace_cluster(&[sys0.trace(), sys1.trace()]);
        let events = chrome.get("traceEvents").unwrap().as_array().unwrap();

        // One process_name metadata event per rank, pid = rank + 1, with
        // the rank id in the metadata args.
        let process_names: Vec<(u64, &str, u64)> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("process_name"))
            .map(|e| {
                (
                    e.get("pid").unwrap().as_f64().unwrap() as u64,
                    e.get("args")
                        .unwrap()
                        .get("name")
                        .unwrap()
                        .as_str()
                        .unwrap(),
                    e.get("args")
                        .unwrap()
                        .get("rank")
                        .unwrap()
                        .as_f64()
                        .unwrap() as u64,
                )
            })
            .collect();
        assert_eq!(process_names, vec![(1, "rank 0", 0), (2, "rank 1", 1)]);

        // Every non-metadata event lands in one of the rank processes, and
        // both ranks have kernel spans under their own pid.
        for pid in [1u64, 2] {
            assert!(events.iter().any(|e| {
                e.get("pid").unwrap().as_f64() == Some(pid as f64)
                    && e.get("name").unwrap().as_str() == Some("kernel:probe")
            }));
        }
        // Track metadata carries the rank.
        let rank_tagged = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .all(|e| e.get("args").unwrap().get("rank").is_some());
        assert!(rank_tagged, "cluster tracks must carry rank metadata");

        // The single-trace export is unchanged by the refactor: no rank
        // metadata, everything under pid 1.
        let solo = sys0.trace().to_chrome_trace();
        let solo_events = solo.get("traceEvents").unwrap().as_array().unwrap();
        assert!(solo_events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .all(|e| e.get("args").unwrap().get("rank").is_none()));
    }
}
