//! Execution tracing: an event timeline of transfers and kernel launches.
//!
//! Disabled by default (zero overhead beyond a branch); enable with
//! [`crate::PimSystem::enable_tracing`] to capture what the host did to
//! the PIM system and what each step cost. The harness and examples use
//! it to explain phase times; it is also the easiest way to see the §4.1
//! phase structure of a run at a glance via [`Trace::render`].

use crate::cost::SimSeconds;
use crate::phase::Phase;
use serde::{Deserialize, Serialize};

/// One recorded simulator event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// System allocation.
    Allocate {
        /// PIM cores allocated.
        nr_dpus: usize,
        /// Modeled seconds charged.
        seconds: SimSeconds,
    },
    /// A rank-parallel CPU→PIM transfer batch.
    Push {
        /// Individual writes in the batch.
        writes: usize,
        /// Total payload bytes.
        bytes: u64,
        /// Modeled seconds charged.
        seconds: SimSeconds,
        /// Phase the cost accrued to.
        phase: Phase,
    },
    /// A rank-parallel PIM→CPU gather.
    Gather {
        /// Total payload bytes.
        bytes: u64,
        /// Modeled seconds charged.
        seconds: SimSeconds,
        /// Phase the cost accrued to.
        phase: Phase,
    },
    /// An SPMD kernel launch.
    Kernel {
        /// Wall cycles of the slowest DPU.
        max_cycles: u64,
        /// Modeled seconds charged (launch overhead included).
        seconds: SimSeconds,
        /// Phase the cost accrued to.
        phase: Phase,
    },
    /// Measured host-side work folded into the clock.
    HostWork {
        /// Measured seconds.
        seconds: SimSeconds,
        /// Phase the cost accrued to.
        phase: Phase,
    },
    /// The orchestrator switched phases.
    PhaseChange {
        /// New phase.
        to: Phase,
    },
}

impl TraceEvent {
    /// Seconds this event contributed to the clock (0 for phase changes).
    pub fn seconds(&self) -> SimSeconds {
        match self {
            TraceEvent::Allocate { seconds, .. }
            | TraceEvent::Push { seconds, .. }
            | TraceEvent::Gather { seconds, .. }
            | TraceEvent::Kernel { seconds, .. }
            | TraceEvent::HostWork { seconds, .. } => *seconds,
            TraceEvent::PhaseChange { .. } => 0.0,
        }
    }
}

/// A recorded event timeline.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub(crate) fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total modeled seconds across recorded events.
    pub fn total_seconds(&self) -> SimSeconds {
        self.events.iter().map(TraceEvent::seconds).sum()
    }

    /// Renders a human-readable timeline.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut clock = 0.0f64;
        for e in &self.events {
            clock += e.seconds();
            let _ = match e {
                TraceEvent::Allocate { nr_dpus, seconds } => writeln!(
                    out,
                    "[{clock:>10.6}s] allocate {nr_dpus} DPUs (+{seconds:.6}s)"
                ),
                TraceEvent::Push { writes, bytes, seconds, phase } => writeln!(
                    out,
                    "[{clock:>10.6}s] push {writes} writes / {bytes} B (+{seconds:.6}s) [{phase:?}]"
                ),
                TraceEvent::Gather { bytes, seconds, phase } => writeln!(
                    out,
                    "[{clock:>10.6}s] gather {bytes} B (+{seconds:.6}s) [{phase:?}]"
                ),
                TraceEvent::Kernel { max_cycles, seconds, phase } => writeln!(
                    out,
                    "[{clock:>10.6}s] kernel max {max_cycles} cycles (+{seconds:.6}s) [{phase:?}]"
                ),
                TraceEvent::HostWork { seconds, phase } => writeln!(
                    out,
                    "[{clock:>10.6}s] host work (+{seconds:.6}s) [{phase:?}]"
                ),
                TraceEvent::PhaseChange { to } => {
                    writeln!(out, "[{clock:>10.6}s] --- phase: {to:?} ---")
                }
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, HostWrite, PimConfig, PimSystem};

    #[test]
    fn disabled_trace_records_nothing() {
        let mut sys = PimSystem::allocate(2, PimConfig::tiny(), CostModel::default()).unwrap();
        sys.push(vec![HostWrite { dpu: 0, offset: 0, data: vec![0; 8] }]).unwrap();
        assert!(sys.trace().events().is_empty());
    }

    #[test]
    fn enabled_trace_captures_the_pipeline() {
        let mut sys = PimSystem::allocate(2, PimConfig::tiny(), CostModel::default()).unwrap();
        sys.enable_tracing();
        sys.set_phase(crate::Phase::SampleCreation);
        sys.push(vec![
            HostWrite { dpu: 0, offset: 0, data: vec![0; 8] },
            HostWrite { dpu: 1, offset: 0, data: vec![0; 8] },
        ])
        .unwrap();
        sys.set_phase(crate::Phase::TriangleCount);
        sys.execute(|ctx| {
            let mut t = ctx.tasklet(0)?;
            t.charge(10);
            Ok(())
        })
        .unwrap();
        sys.gather(0, 8).unwrap();
        let events = sys.trace().events();
        assert!(matches!(events[0], TraceEvent::PhaseChange { .. }));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Push { bytes: 16, writes: 2, .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Kernel { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Gather { .. })));
        // Rendered timeline mentions each step.
        let rendered = sys.trace().render();
        assert!(rendered.contains("push"));
        assert!(rendered.contains("kernel"));
        assert!(rendered.contains("gather"));
        assert!(sys.trace().total_seconds() > 0.0);
    }
}
