//! The execution-backend seam: one host-side API, two engines.
//!
//! The PrIM line of work (Gómez-Luna et al., IEEE Access 2022) separates
//! the *functional* behaviour of UPMEM hardware from its *timing
//! characterization*; this module exposes the same split for the
//! simulator. [`PimBackend`] abstracts everything an orchestrator does to
//! the PIM machine — allocation, rank-parallel `push`/`gather` transfers,
//! labeled SPMD kernel launches, phase accounting, and trace/report
//! access — and two engines implement it:
//!
//! * [`TimedBackend`] (an alias for [`PimSystem`]): full cycle, DMA,
//!   transfer-bandwidth, and energy accounting against the
//!   PrIM-calibrated [`CostModel`]. Use it whenever modeled time matters.
//! * [`FunctionalBackend`]: executes the *same* kernel closures over the
//!   same MRAM banks (still via rayon across DPUs), but skips all timing,
//!   trace, and energy bookkeeping. Phase times, transfer seconds, trace
//!   events, and energy all report zero. Use it for correctness tests,
//!   proptests, and exact-count baselines where only functional behaviour
//!   matters.
//!
//! Both backends are bit-identical on *data*: MRAM contents, kernel
//! results, and gathered bytes never differ (the equivalence proptests in
//! `pim-tc` pin this). Only the clocks differ.

use crate::config::PimConfig;
use crate::cost::{CostModel, SimSeconds};
use crate::dpu::Dpu;
use crate::energy::EnergyReport;
use crate::error::{SimError, SimResult};
use crate::fault::{FaultCounters, FaultDecision, FaultState, OpKind};
use crate::kernel::{DpuContext, Pod};
use crate::phase::{Phase, PhaseTimes};
use crate::system::{HostWrite, PimSystem, CORRUPT_MASK};
use crate::trace::Trace;
use pim_metrics::{LaunchObs, MetricsHub};
use rayon::prelude::*;
use std::sync::Arc;

/// Host-side driver interface for a set of allocated PIM cores.
///
/// Orchestrators (e.g. `pim-tc`'s `TcSession`) are written against this
/// trait so the same pipeline runs on the timed simulator or the
/// functional engine. Kernel launches are generic over the closure and
/// its result type, so the trait is used through generics (static
/// dispatch), not trait objects.
pub trait PimBackend: Send {
    /// Allocates `nr_dpus` PIM cores under the given hardware shape and
    /// cost model. Timed backends charge the setup cost; functional
    /// backends only build the banks.
    fn allocate(nr_dpus: usize, config: PimConfig, cost: CostModel) -> SimResult<Self>
    where
        Self: Sized;

    /// Number of allocated PIM cores.
    fn nr_dpus(&self) -> usize;

    /// Hardware configuration in effect.
    fn config(&self) -> &PimConfig;

    /// Cost model in effect (functional backends hold one for kernel
    /// bookkeeping interfaces but never convert it into seconds).
    fn cost(&self) -> &CostModel;

    /// Read-only access to a DPU (host-side inspection; tests and result
    /// gathering).
    fn dpu(&self, id: usize) -> SimResult<&Dpu>;

    /// Mutable access to a DPU bank, bypassing the modeled transfer path.
    /// This is the chaos-harness escape hatch: tests use it to flip bits
    /// in resident banks out of band (modeling radiation upsets the fault
    /// plan cannot schedule) and assert that scrubbing catches them. Not
    /// for orchestrators — data planes must go through `push`/`broadcast`
    /// so transfers stay modeled and faultable.
    fn dpu_mut(&mut self, id: usize) -> SimResult<&mut Dpu>;

    /// Switches the phase that subsequent costs accrue to.
    fn set_phase(&mut self, phase: Phase);

    /// Phase currently accruing time.
    fn phase(&self) -> Phase;

    /// Modeled per-phase times so far (all-zero on functional backends).
    fn phase_times(&self) -> PhaseTimes;

    /// Starts recording an event timeline. No-op on backends that do not
    /// produce timing events.
    fn enable_tracing(&mut self);

    /// Attaches a live metrics hub: transfers, launches, host spans, and
    /// faults are emitted as structured events and folded into the hub's
    /// registry as they happen. Both backends emit the *same* event
    /// sequence for the same workload — the functional backend reports all
    /// seconds as zero, but counts (bytes, cycles, instructions, faults)
    /// are identical. The default implementation drops the hub.
    fn attach_metrics(&mut self, _hub: Arc<MetricsHub>) {}

    /// The recorded timeline (always empty on functional backends).
    fn trace(&self) -> &Trace;

    /// Folds measured host-side seconds into the current phase under a
    /// span label. Functional backends drop the measurement.
    fn charge_host_seconds_labeled(&mut self, label: &str, seconds: SimSeconds);

    /// Unlabeled convenience over
    /// [`PimBackend::charge_host_seconds_labeled`].
    fn charge_host_seconds(&mut self, seconds: SimSeconds) {
        self.charge_host_seconds_labeled("host", seconds);
    }

    /// Executes a rank-parallel CPU→PIM transfer batch.
    fn push(&mut self, writes: Vec<HostWrite>) -> SimResult<()>;

    /// Broadcasts the same payload to every DPU at the same offset.
    fn broadcast(&mut self, offset: u64, data: &[u8]) -> SimResult<()>;

    /// Gathers `len` bytes at `offset` from every DPU (PIM→CPU transfer).
    fn gather(&mut self, offset: u64, len: u64) -> SimResult<Vec<Vec<u8>>>;

    /// Typed convenience over [`PimBackend::gather`]: one `T` per DPU
    /// read from the same offset.
    fn gather_one<T: Pod>(&mut self, offset: u64) -> SimResult<Vec<T>> {
        Ok(self
            .gather(offset, T::BYTES as u64)?
            .into_iter()
            .map(|bytes| T::read_le(&bytes))
            .collect())
    }

    /// Launches a labeled SPMD kernel on every allocated DPU, returning
    /// each DPU's result in id order. Timed backends bill
    /// `launch_overhead + max per-DPU cycles` to the current phase and
    /// record a trace event; functional backends only run the closures.
    fn execute_labeled<R, K>(&mut self, label: &str, kernel: K) -> SimResult<Vec<R>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
        Self: Sized;

    /// [`PimBackend::execute_labeled`] under the generic `"kernel"` label.
    fn execute<R, K>(&mut self, kernel: K) -> SimResult<Vec<R>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
        Self: Sized,
    {
        self.execute_labeled("kernel", kernel)
    }

    /// Like [`PimBackend::execute_labeled`], but tolerant of permanently
    /// dead DPUs (see [`crate::fault`]): their slots come back as `None`
    /// instead of failing the launch. The default implementation assumes a
    /// fault-free machine where every slot is `Some`.
    fn execute_labeled_masked<R, K>(&mut self, label: &str, kernel: K) -> SimResult<Vec<Option<R>>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
        Self: Sized,
    {
        Ok(self
            .execute_labeled(label, kernel)?
            .into_iter()
            .map(Some)
            .collect())
    }

    /// Whether the fault plan has permanently killed `dpu`. Always false
    /// without an active plan.
    fn is_dpu_lost(&self, _dpu: usize) -> bool {
        false
    }

    /// Counters of faults injected so far (all-zero without a plan).
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// Sum of MRAM bytes in use across all DPUs.
    fn total_mram_used(&self) -> u64;

    /// Total CPU↔PIM bytes moved so far (tracked on both backends — it is
    /// a data quantity, not a time).
    fn total_transfer_bytes(&self) -> u64;

    /// Total modeled seconds spent on CPU↔PIM transfers (zero on
    /// functional backends).
    fn total_transfer_seconds(&self) -> SimSeconds;

    /// Energy totals for everything executed so far (all-zero on
    /// functional backends).
    fn energy_report(&self) -> EnergyReport;

    /// Frees the PIM cores, returning the final phase times.
    fn release(self) -> PhaseTimes
    where
        Self: Sized;
}

/// The timed execution backend: the full cycle-accounting simulator.
///
/// `TimedBackend` *is* [`PimSystem`]; the alias names the role it plays
/// on the [`PimBackend`] seam.
pub type TimedBackend = PimSystem;

impl PimBackend for PimSystem {
    fn allocate(nr_dpus: usize, config: PimConfig, cost: CostModel) -> SimResult<Self> {
        PimSystem::allocate(nr_dpus, config, cost)
    }

    fn nr_dpus(&self) -> usize {
        PimSystem::nr_dpus(self)
    }

    fn config(&self) -> &PimConfig {
        PimSystem::config(self)
    }

    fn cost(&self) -> &CostModel {
        PimSystem::cost(self)
    }

    fn dpu(&self, id: usize) -> SimResult<&Dpu> {
        PimSystem::dpu(self, id)
    }

    fn dpu_mut(&mut self, id: usize) -> SimResult<&mut Dpu> {
        PimSystem::dpu_mut(self, id)
    }

    fn set_phase(&mut self, phase: Phase) {
        PimSystem::set_phase(self, phase);
    }

    fn phase(&self) -> Phase {
        PimSystem::phase(self)
    }

    fn phase_times(&self) -> PhaseTimes {
        PimSystem::phase_times(self)
    }

    fn enable_tracing(&mut self) {
        PimSystem::enable_tracing(self);
    }

    fn attach_metrics(&mut self, hub: Arc<MetricsHub>) {
        PimSystem::attach_metrics(self, hub);
    }

    fn trace(&self) -> &Trace {
        PimSystem::trace(self)
    }

    fn charge_host_seconds_labeled(&mut self, label: &str, seconds: SimSeconds) {
        PimSystem::charge_host_seconds_labeled(self, label, seconds);
    }

    fn push(&mut self, writes: Vec<HostWrite>) -> SimResult<()> {
        PimSystem::push(self, writes)
    }

    fn broadcast(&mut self, offset: u64, data: &[u8]) -> SimResult<()> {
        PimSystem::broadcast(self, offset, data)
    }

    fn gather(&mut self, offset: u64, len: u64) -> SimResult<Vec<Vec<u8>>> {
        PimSystem::gather(self, offset, len)
    }

    fn execute_labeled<R, K>(&mut self, label: &str, kernel: K) -> SimResult<Vec<R>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
    {
        PimSystem::execute_labeled(self, label, kernel)
    }

    fn execute_labeled_masked<R, K>(&mut self, label: &str, kernel: K) -> SimResult<Vec<Option<R>>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
    {
        PimSystem::execute_labeled_masked(self, label, kernel)
    }

    fn is_dpu_lost(&self, dpu: usize) -> bool {
        PimSystem::is_dpu_lost(self, dpu)
    }

    fn fault_counters(&self) -> FaultCounters {
        PimSystem::fault_counters(self)
    }

    fn total_mram_used(&self) -> u64 {
        PimSystem::total_mram_used(self)
    }

    fn total_transfer_bytes(&self) -> u64 {
        PimSystem::total_transfer_bytes(self)
    }

    fn total_transfer_seconds(&self) -> SimSeconds {
        PimSystem::total_transfer_seconds(self)
    }

    fn energy_report(&self) -> EnergyReport {
        PimSystem::energy_report(self)
    }

    fn release(self) -> PhaseTimes {
        PimSystem::release(self)
    }
}

/// The functional execution backend: same banks, same kernels, no clocks.
///
/// Data movement and kernel execution are bit-identical to
/// [`TimedBackend`]; every time-, trace-, and energy-producing path is a
/// no-op. Per-DPU activity counters (instructions, DMA bytes) still
/// accumulate — they are data-derived and cost nothing extra — so
/// [`crate::SystemReport`] aggregates remain meaningful.
pub struct FunctionalBackend {
    config: PimConfig,
    cost: CostModel,
    dpus: Vec<Dpu>,
    phase: Phase,
    transfer_bytes: u64,
    /// Always-empty, never-enabled timeline handed out by `trace()`.
    trace: Trace,
    fault: FaultState,
    metrics: Option<Arc<MetricsHub>>,
}

impl FunctionalBackend {
    /// Emits a fault event on the attached hub, if any.
    fn record_fault(&self, kind: &'static str, op: u64, dpu: Option<usize>) {
        if let Some(hub) = &self.metrics {
            hub.fault(kind, self.phase.metric_name(), op, dpu.map(|d| d as u64));
        }
    }
}

impl FunctionalBackend {
    /// Allocates `nr_dpus` functional PIM cores with the default hardware
    /// shape.
    pub fn allocate_default(nr_dpus: usize) -> SimResult<Self> {
        <Self as PimBackend>::allocate(nr_dpus, PimConfig::default(), CostModel::default())
    }
}

impl PimBackend for FunctionalBackend {
    fn allocate(nr_dpus: usize, config: PimConfig, cost: CostModel) -> SimResult<Self> {
        if nr_dpus > config.total_dpus {
            return Err(SimError::TooManyDpus {
                requested: nr_dpus,
                available: config.total_dpus,
            });
        }
        let dpus = (0..nr_dpus)
            .map(|id| Dpu::new(id, config.mram_capacity, config.nr_tasklets))
            .collect();
        Ok(FunctionalBackend {
            config,
            cost,
            dpus,
            phase: Phase::Setup,
            transfer_bytes: 0,
            trace: Trace::default(),
            fault: FaultState::new(config.fault, nr_dpus),
            metrics: None,
        })
    }

    fn nr_dpus(&self) -> usize {
        self.dpus.len()
    }

    fn config(&self) -> &PimConfig {
        &self.config
    }

    fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn dpu(&self, id: usize) -> SimResult<&Dpu> {
        self.dpus.get(id).ok_or(SimError::NoSuchDpu {
            dpu: id,
            allocated: self.dpus.len(),
        })
    }

    fn dpu_mut(&mut self, id: usize) -> SimResult<&mut Dpu> {
        let allocated = self.dpus.len();
        self.dpus
            .get_mut(id)
            .ok_or(SimError::NoSuchDpu { dpu: id, allocated })
    }

    fn set_phase(&mut self, phase: Phase) {
        if self.phase != phase {
            if let Some(hub) = &self.metrics {
                hub.phase_change(phase.metric_name());
            }
        }
        self.phase = phase;
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn phase_times(&self) -> PhaseTimes {
        PhaseTimes::default()
    }

    fn enable_tracing(&mut self) {
        // Functional runs produce no timing events; the timeline stays
        // empty by design (see docs/OBSERVABILITY.md).
    }

    fn attach_metrics(&mut self, hub: Arc<MetricsHub>) {
        // Functional allocation charges no modeled time.
        hub.alloc(self.dpus.len() as u64, 0.0);
        self.metrics = Some(hub);
    }

    fn trace(&self) -> &Trace {
        &self.trace
    }

    fn charge_host_seconds_labeled(&mut self, label: &str, _seconds: SimSeconds) {
        // The measurement itself is dropped (no modeled clock), but the
        // event is still emitted — with zero seconds — so retry counts and
        // span sequences match the timed backend exactly.
        if let Some(hub) = &self.metrics {
            hub.host(label, self.phase.metric_name(), 0.0);
        }
    }

    fn push(&mut self, writes: Vec<HostWrite>) -> SimResult<()> {
        for w in &writes {
            if w.dpu >= self.dpus.len() {
                return Err(SimError::NoSuchDpu {
                    dpu: w.dpu,
                    allocated: self.dpus.len(),
                });
            }
            if self.fault.is_dead(w.dpu) {
                return Err(SimError::DpuDead { dpu: w.dpu });
            }
        }
        let decision = self.fault.decide(OpKind::Transfer);
        match decision {
            FaultDecision::Kill { dpu, op } => {
                self.record_fault("kill", op, Some(dpu));
                return Err(SimError::DpuDead { dpu });
            }
            FaultDecision::Fail { op } => {
                self.record_fault("transfer_fail", op, None);
                if let Some(hub) = &self.metrics {
                    hub.transfer(
                        "push",
                        self.phase.metric_name(),
                        writes.len() as u64,
                        0,
                        0.0,
                        false,
                    );
                }
                return Err(SimError::FaultTransfer { op });
            }
            FaultDecision::None | FaultDecision::Corrupt { .. } => {}
        }
        let mut bytes = 0u64;
        for w in &writes {
            self.dpus[w.dpu].host_write(w.offset, &w.data)?;
            bytes += w.data.len() as u64;
        }
        self.transfer_bytes += bytes;
        if let FaultDecision::Corrupt { salt, op } = decision {
            let victims: Vec<usize> = (0..writes.len())
                .filter(|&i| !writes[i].data.is_empty())
                .collect();
            if !victims.is_empty() {
                let w = &writes[victims[salt as usize % victims.len()]];
                let byte = (salt >> 8) % w.data.len() as u64;
                let flipped = w.data[byte as usize] ^ CORRUPT_MASK;
                self.dpus[w.dpu].host_write(w.offset + byte, &[flipped])?;
                self.fault.count_corruption();
                self.record_fault("corrupt", op, Some(w.dpu));
            }
        }
        if let Some(hub) = &self.metrics {
            hub.transfer(
                "push",
                self.phase.metric_name(),
                writes.len() as u64,
                bytes,
                0.0,
                true,
            );
        }
        Ok(())
    }

    fn broadcast(&mut self, offset: u64, data: &[u8]) -> SimResult<()> {
        let decision = self.fault.decide(OpKind::Transfer);
        match decision {
            FaultDecision::Kill { dpu, op } => {
                self.record_fault("kill", op, Some(dpu));
                return Err(SimError::DpuDead { dpu });
            }
            FaultDecision::Fail { op } => {
                self.record_fault("transfer_fail", op, None);
                if let Some(hub) = &self.metrics {
                    hub.transfer(
                        "broadcast",
                        self.phase.metric_name(),
                        self.dpus.len() as u64,
                        0,
                        0.0,
                        false,
                    );
                }
                return Err(SimError::FaultTransfer { op });
            }
            FaultDecision::None | FaultDecision::Corrupt { .. } => {}
        }
        let mut live_count = 0u64;
        for dpu in &mut self.dpus {
            if !self.fault.is_dead(dpu.id()) {
                dpu.host_write(offset, data)?;
                live_count += 1;
            }
        }
        let bytes = data.len() as u64 * live_count;
        self.transfer_bytes += bytes;
        if let FaultDecision::Corrupt { salt, op } = decision {
            let victims: Vec<usize> = (0..self.dpus.len())
                .filter(|&d| !self.fault.is_dead(d))
                .collect();
            if !victims.is_empty() && !data.is_empty() {
                let d = victims[salt as usize % victims.len()];
                let byte = (salt >> 8) % data.len() as u64;
                let flipped = data[byte as usize] ^ CORRUPT_MASK;
                self.dpus[d].host_write(offset + byte, &[flipped])?;
                self.fault.count_corruption();
                self.record_fault("corrupt", op, Some(d));
            }
        }
        if let Some(hub) = &self.metrics {
            hub.transfer(
                "broadcast",
                self.phase.metric_name(),
                self.dpus.len() as u64,
                bytes,
                0.0,
                true,
            );
        }
        Ok(())
    }

    fn gather(&mut self, offset: u64, len: u64) -> SimResult<Vec<Vec<u8>>> {
        let decision = self.fault.decide(OpKind::Transfer);
        match decision {
            FaultDecision::Kill { dpu, op } => {
                self.record_fault("kill", op, Some(dpu));
                return Err(SimError::DpuDead { dpu });
            }
            FaultDecision::Fail { op } => {
                self.record_fault("transfer_fail", op, None);
                if let Some(hub) = &self.metrics {
                    hub.transfer(
                        "gather",
                        self.phase.metric_name(),
                        self.dpus.len() as u64,
                        0,
                        0.0,
                        false,
                    );
                }
                return Err(SimError::FaultTransfer { op });
            }
            FaultDecision::None | FaultDecision::Corrupt { .. } => {}
        }
        let out: SimResult<Vec<Vec<u8>>> = self
            .dpus
            .iter()
            .map(|d| {
                if self.fault.is_dead(d.id()) {
                    Ok(vec![0u8; len as usize])
                } else {
                    d.host_read(offset, len)
                }
            })
            .collect();
        let mut out = out?;
        if let FaultDecision::Corrupt { salt, op } = decision {
            let victims: Vec<usize> = (0..out.len())
                .filter(|&d| !self.fault.is_dead(d) && !out[d].is_empty())
                .collect();
            if !victims.is_empty() {
                let d = victims[salt as usize % victims.len()];
                let byte = (salt >> 8) as usize % out[d].len();
                out[d][byte] ^= CORRUPT_MASK;
                self.fault.count_corruption();
                self.record_fault("corrupt", op, Some(d));
            }
        }
        let bytes = len * self.dpus.len() as u64;
        self.transfer_bytes += bytes;
        if let Some(hub) = &self.metrics {
            hub.transfer(
                "gather",
                self.phase.metric_name(),
                self.dpus.len() as u64,
                bytes,
                0.0,
                true,
            );
        }
        Ok(out)
    }

    fn execute_labeled<R, K>(&mut self, label: &str, kernel: K) -> SimResult<Vec<R>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
    {
        let results = self.execute_labeled_masked(label, kernel)?;
        results
            .into_iter()
            .enumerate()
            .map(|(dpu, r)| r.ok_or(SimError::DpuDead { dpu }))
            .collect()
    }

    fn execute_labeled_masked<R, K>(&mut self, label: &str, kernel: K) -> SimResult<Vec<Option<R>>>
    where
        R: Send,
        K: Fn(&mut DpuContext<'_>) -> SimResult<R> + Sync,
    {
        match self.fault.decide(OpKind::Launch) {
            FaultDecision::Kill { dpu, op } => {
                self.record_fault("kill", op, Some(dpu));
                return Err(SimError::DpuDead { dpu });
            }
            FaultDecision::Fail { op } => {
                self.record_fault("launch_fail", op, None);
                if let Some(hub) = &self.metrics {
                    hub.launch(LaunchObs {
                        label: label.to_string(),
                        phase: self.phase.metric_name(),
                        dpus: 0,
                        max_cycles: 0,
                        mean_cycles: 0.0,
                        instructions: 0,
                        dma_bytes: 0,
                        seconds: 0.0,
                        ok: false,
                    });
                }
                return Err(SimError::FaultLaunch { op });
            }
            FaultDecision::None | FaultDecision::Corrupt { .. } => {}
        }
        let config = self.config;
        let cost = self.cost;
        let dead: Vec<bool> = self.fault.dead_flags().to_vec();
        let results: SimResult<Vec<(Option<R>, u64)>> = self
            .dpus
            .par_iter_mut()
            .map(|dpu| {
                if dead.get(dpu.id()).copied().unwrap_or(false) {
                    return Ok((None, 0));
                }
                dpu.reset_kernel_counters();
                let mut ctx = DpuContext {
                    dpu,
                    config: &config,
                    cost: &cost,
                };
                let r = kernel(&mut ctx)?;
                // Cycles are data-derived (instruction and DMA counts), so
                // the functional backend reports the same per-launch cycle
                // observations as the timed one — only *seconds* stay zero.
                let cycles = cost.dpu_cycles(&ctx.dpu.tasklet_instr, ctx.dpu.dma_cycles);
                Ok((Some(r), cycles))
            })
            .collect();
        let results = results?;
        if let Some(hub) = &self.metrics {
            let is_dead = |id: usize| dead.get(id).copied().unwrap_or(false);
            let live = results.iter().filter(|(r, _)| r.is_some()).count() as u64;
            let max_cycles = results.iter().map(|(_, c)| *c).max().unwrap_or(0);
            let cycle_sum: u64 = results.iter().map(|(_, c)| *c).sum();
            let instructions: u64 = self
                .dpus
                .iter()
                .filter(|d| !is_dead(d.id()))
                .map(|d| d.tasklet_instr.iter().sum::<u64>())
                .sum();
            let dma_bytes: u64 = self
                .dpus
                .iter()
                .filter(|d| !is_dead(d.id()))
                .map(|d| d.kernel_dma_bytes)
                .sum();
            hub.launch(LaunchObs {
                label: label.to_string(),
                phase: self.phase.metric_name(),
                dpus: live,
                max_cycles,
                mean_cycles: if live > 0 {
                    cycle_sum as f64 / live as f64
                } else {
                    0.0
                },
                instructions,
                dma_bytes,
                seconds: 0.0,
                ok: true,
            });
            // Same per-DPU distribution stream as the timed backend (the
            // cycle observations are data-derived, so both backends emit
            // identical hist events for the same run).
            let per_dpu_cycles: Vec<u64> = results.iter().map(|(_, c)| *c).collect();
            let per_dpu_dma: Vec<u64> = self
                .dpus
                .iter()
                .map(|d| {
                    if is_dead(d.id()) {
                        0
                    } else {
                        d.kernel_dma_bytes
                    }
                })
                .collect();
            hub.launch_hist(
                label,
                self.phase.metric_name(),
                &per_dpu_cycles,
                &per_dpu_dma,
            );
        }
        Ok(results.into_iter().map(|(r, _)| r).collect())
    }

    fn is_dpu_lost(&self, dpu: usize) -> bool {
        self.fault.is_dead(dpu)
    }

    fn fault_counters(&self) -> FaultCounters {
        self.fault.counters()
    }

    fn total_mram_used(&self) -> u64 {
        self.dpus.iter().map(Dpu::mram_used).sum()
    }

    fn total_transfer_bytes(&self) -> u64 {
        self.transfer_bytes
    }

    fn total_transfer_seconds(&self) -> SimSeconds {
        0.0
    }

    fn energy_report(&self) -> EnergyReport {
        EnergyReport {
            instr_j: 0.0,
            dma_j: 0.0,
            transfer_j: 0.0,
            static_j: 0.0,
        }
    }

    fn release(self) -> PhaseTimes {
        PhaseTimes::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{decode_slice, encode_slice};

    /// The same small pipeline, written once against the trait.
    fn drive<B: PimBackend>(mut sys: B) -> (Vec<u32>, PhaseTimes, u64) {
        sys.set_phase(Phase::SampleCreation);
        let writes = (0..4)
            .map(|dpu| HostWrite {
                dpu,
                offset: 0,
                data: encode_slice(&[dpu as u32 + 1; 8]),
            })
            .collect();
        sys.push(writes).unwrap();
        sys.set_phase(Phase::TriangleCount);
        sys.execute_labeled("sum", |ctx| {
            let mut t = ctx.tasklet(0)?;
            let mut buf = [0u32; 8];
            t.mram_read(0, &mut buf)?;
            t.charge(8);
            let sum: u32 = buf.iter().sum();
            t.mram_write_one(64, sum)?;
            Ok(())
        })
        .unwrap();
        let out: Vec<u32> = sys.gather_one(64).unwrap();
        let bytes = sys.total_transfer_bytes();
        (out, sys.release(), bytes)
    }

    #[test]
    fn backends_agree_on_data_and_disagree_on_time() {
        let timed =
            <TimedBackend as PimBackend>::allocate(4, PimConfig::tiny(), CostModel::default())
                .unwrap();
        let func =
            <FunctionalBackend as PimBackend>::allocate(4, PimConfig::tiny(), CostModel::default())
                .unwrap();
        let (timed_out, timed_times, timed_bytes) = drive(timed);
        let (func_out, func_times, func_bytes) = drive(func);
        assert_eq!(timed_out, vec![8, 16, 24, 32]);
        assert_eq!(timed_out, func_out);
        assert_eq!(timed_bytes, func_bytes);
        assert!(timed_times.total() > 0.0);
        assert_eq!(func_times.total(), 0.0);
    }

    #[test]
    fn functional_backend_moves_data_without_charging_time() {
        let mut sys = FunctionalBackend::allocate_default(2).unwrap();
        sys.broadcast(0, &encode_slice(&[7u64, 9])).unwrap();
        for id in 0..2 {
            let bytes = sys.dpu(id).unwrap().host_read(0, 16).unwrap();
            assert_eq!(decode_slice::<u64>(&bytes), vec![7, 9]);
        }
        assert_eq!(sys.total_transfer_bytes(), 32);
        assert_eq!(sys.total_transfer_seconds(), 0.0);
        assert_eq!(sys.phase_times(), PhaseTimes::default());
        assert_eq!(sys.energy_report().total_j(), 0.0);
    }

    #[test]
    fn functional_backend_produces_no_trace_events() {
        let mut sys = FunctionalBackend::allocate_default(2).unwrap();
        sys.enable_tracing();
        sys.set_phase(Phase::SampleCreation);
        sys.broadcast(0, &[0u8; 64]).unwrap();
        sys.execute(|ctx| {
            let mut t = ctx.tasklet(0)?;
            t.charge(10);
            Ok(())
        })
        .unwrap();
        assert!(sys.trace().events().is_empty());
        assert!(!sys.trace().is_enabled());
    }

    #[test]
    fn functional_backend_enforces_machine_limits() {
        let cfg = PimConfig::tiny();
        assert!(matches!(
            <FunctionalBackend as PimBackend>::allocate(65, cfg, CostModel::default()),
            Err(SimError::TooManyDpus { .. })
        ));
        let mut sys = FunctionalBackend::allocate_default(1).unwrap();
        assert!(matches!(
            sys.push(vec![HostWrite {
                dpu: 5,
                offset: 0,
                data: vec![0],
            }]),
            Err(SimError::NoSuchDpu { dpu: 5, .. })
        ));
        assert!(sys.dpu(3).is_err());
    }

    #[test]
    fn backends_emit_equivalent_metric_streams() {
        use pim_metrics::{summarize, MemorySink};

        fn run<B: PimBackend>(mut sys: B) -> pim_metrics::StreamSummary {
            let hub = Arc::new(MetricsHub::new());
            let sink = MemorySink::new();
            hub.add_sink(Box::new(sink.clone()));
            sys.attach_metrics(Arc::clone(&hub));
            drive(sys);
            summarize(&sink.events())
        }

        let timed =
            run(
                <TimedBackend as PimBackend>::allocate(4, PimConfig::tiny(), CostModel::default())
                    .unwrap(),
            );
        let func = run(<FunctionalBackend as PimBackend>::allocate(
            4,
            PimConfig::tiny(),
            CostModel::default(),
        )
        .unwrap());

        // Same event counts, bytes, cycles, instructions on both engines.
        assert_eq!(timed.events, func.events);
        assert_eq!(timed.nr_dpus, func.nr_dpus);
        assert_eq!(timed.transfer_bytes(), func.transfer_bytes());
        assert_eq!(timed.instructions(), func.instructions());
        assert_eq!(timed.dma_bytes(), func.dma_bytes());
        assert_eq!(
            timed.launches["sum"].max_cycles_total,
            func.launches["sum"].max_cycles_total
        );
        // Only the clocks differ.
        assert!(timed.total_seconds() > 0.0);
        assert_eq!(func.total_seconds(), 0.0);
    }

    #[test]
    fn timed_metric_seconds_close_against_phase_times() {
        use pim_metrics::{summarize, MemorySink};
        let mut sys =
            <TimedBackend as PimBackend>::allocate(4, PimConfig::tiny(), CostModel::default())
                .unwrap();
        let hub = Arc::new(MetricsHub::new());
        let sink = MemorySink::new();
        hub.add_sink(Box::new(sink.clone()));
        sys.attach_metrics(hub);
        sys.set_phase(Phase::SampleCreation);
        sys.broadcast(0, &encode_slice(&[1u32; 16])).unwrap();
        sys.charge_host_seconds_labeled("route_edges", 0.125);
        sys.set_phase(Phase::TriangleCount);
        sys.execute_labeled("count", |ctx| {
            let mut t = ctx.tasklet(0)?;
            t.charge(100);
            Ok(())
        })
        .unwrap();
        sys.gather(0, 64).unwrap();
        let times = sys.phase_times();
        let summary = summarize(&sink.events());
        assert!(
            (summary.total_seconds() - times.total()).abs() < 1e-12,
            "stream {} vs phases {}",
            summary.total_seconds(),
            times.total()
        );
    }

    #[test]
    fn functional_kernel_errors_propagate() {
        let mut sys = FunctionalBackend::allocate_default(2).unwrap();
        let err = sys
            .execute(|ctx| {
                let mut t = ctx.tasklet(0)?;
                t.mram_read_one::<u64>(1 << 30).map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::MramOverflow { .. } | SimError::BadAddress { .. }
        ));
    }
}
