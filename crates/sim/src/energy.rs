//! Energy accounting (extension beyond the paper).
//!
//! PIM evaluations conventionally report energy next to time; the paper
//! itself focuses on time, so this module is an *extension* built on the
//! same counters the timing model uses. Dynamic energy is charged per
//! retired instruction, per DMA byte, and per host-transfer byte; static
//! energy is the idle power of the allocated DPUs integrated over the
//! run's modeled time. Default coefficients are order-of-magnitude
//! calibrations from UPMEM's published DIMM power (≈23 W per 128-DPU
//! DIMM) and PrIM's throughput data — suitable for *relative* comparisons
//! between configurations, which is how the harness uses them.

use serde::{Deserialize, Serialize};

/// Energy coefficients for the simulated PIM system.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Joules per retired DPU instruction.
    pub j_per_instr: f64,
    /// Joules per MRAM↔WRAM DMA byte.
    pub j_per_dma_byte: f64,
    /// Joules per CPU↔PIM transferred byte.
    pub j_per_xfer_byte: f64,
    /// Static (idle) power per allocated DPU, watts.
    pub static_w_per_dpu: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            // ~30 pJ/instruction for a 350 MHz in-DRAM core.
            j_per_instr: 30.0e-12,
            // ~15 pJ/byte for in-die DRAM row-buffer traffic.
            j_per_dma_byte: 15.0e-12,
            // ~60 pJ/byte across the DIMM interface + host path.
            j_per_xfer_byte: 60.0e-12,
            // 23.22 W / 128 DPUs ≈ 0.18 W, roughly half static.
            static_w_per_dpu: 0.09,
        }
    }
}

/// Energy totals for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic energy of DPU instruction execution, joules.
    pub instr_j: f64,
    /// Dynamic energy of MRAM↔WRAM DMA traffic, joules.
    pub dma_j: f64,
    /// Dynamic energy of CPU↔PIM transfers, joules.
    pub transfer_j: f64,
    /// Static energy of the allocated cores over the modeled runtime,
    /// joules.
    pub static_j: f64,
}

impl EnergyReport {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.instr_j + self.dma_j + self.transfer_j + self.static_j
    }
}

impl EnergyModel {
    /// Assembles a report from raw activity counters.
    pub fn report(
        &self,
        instructions: u64,
        dma_bytes: u64,
        transfer_bytes: u64,
        nr_dpus: usize,
        modeled_seconds: f64,
    ) -> EnergyReport {
        EnergyReport {
            instr_j: instructions as f64 * self.j_per_instr,
            dma_j: dma_bytes as f64 * self.j_per_dma_byte,
            transfer_j: transfer_bytes as f64 * self.j_per_xfer_byte,
            static_j: self.static_w_per_dpu * nr_dpus as f64 * modeled_seconds.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_components_add_up() {
        let m = EnergyModel {
            j_per_instr: 1.0,
            j_per_dma_byte: 2.0,
            j_per_xfer_byte: 3.0,
            static_w_per_dpu: 4.0,
        };
        let r = m.report(10, 20, 30, 2, 5.0);
        assert_eq!(r.instr_j, 10.0);
        assert_eq!(r.dma_j, 40.0);
        assert_eq!(r.transfer_j, 90.0);
        assert_eq!(r.static_j, 40.0);
        assert_eq!(r.total_j(), 180.0);
    }

    #[test]
    fn defaults_are_positive_and_small() {
        let m = EnergyModel::default();
        assert!(m.j_per_instr > 0.0 && m.j_per_instr < 1e-9);
        let r = m.report(1_000_000, 1 << 20, 1 << 20, 64, 0.01);
        assert!(r.total_j() > 0.0 && r.total_j() < 1.0);
    }

    #[test]
    fn negative_time_is_clamped() {
        let r = EnergyModel::default().report(0, 0, 0, 10, -1.0);
        assert_eq!(r.static_j, 0.0);
    }
}
