//! The timing model.
//!
//! All simulated time is derived from this table. Defaults are calibrated
//! against the PrIM characterization of real UPMEM DPUs (Gómez-Luna et
//! al., "Benchmarking a New Paradigm: Experimental Analysis and
//! Characterization of a Real Processing-in-Memory System", IEEE Access
//! 2022) and the UPMEM user manual:
//!
//! * DPUs run at 350 MHz and retire at most one instruction per cycle once
//!   the pipeline is saturated, which requires ≥ 11 resident tasklets;
//!   below that, throughput scales with the tasklet count.
//! * MRAM↔WRAM DMA behaves like `latency + bytes/throughput`, streaming at
//!   ~628 MB/s (≈ 0.53 cycles/byte at 350 MHz) with a fixed setup cost.
//! * Host↔DPU transfers are performed rank-parallel; sustained aggregate
//!   bandwidth saturates around 6.7 GB/s for parallel transfers while a
//!   single DPU sees ~0.33 GB/s.
//!
//! The model intentionally stays at throughput/latency granularity — the
//! goal is faithful *ratios* between phases and configurations (what every
//! figure in the paper measures), not cycle-accurate replay.

use serde::{Deserialize, Serialize};

/// Simulated wall-clock seconds.
pub type SimSeconds = f64;

/// Cost parameters for the simulated system.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// DPU clock frequency in Hz.
    pub clock_hz: f64,
    /// Tasklets needed to saturate the pipeline (UPMEM: 11).
    pub pipeline_saturation: usize,
    /// Fixed cycles charged per DMA transfer (setup/latency).
    pub dma_setup_cycles: u64,
    /// DMA streaming cost in cycles per byte.
    pub dma_cycles_per_byte: f64,
    /// Cycles per 32-bit multiply/divide (DPUs lack a 1-cycle multiplier).
    pub muldiv_cycles: u64,
    /// Host→DPU / DPU→host bandwidth seen by a single DPU, bytes/second.
    pub xfer_per_dpu_bw: f64,
    /// Aggregate bandwidth cap for rank-parallel transfers, bytes/second.
    pub xfer_aggregate_bw: f64,
    /// Fixed host-side latency per transfer batch, seconds.
    pub xfer_latency: SimSeconds,
    /// Fixed system setup cost (rank allocation, binary load), seconds.
    pub setup_fixed: SimSeconds,
    /// Additional setup cost per allocated DPU, seconds.
    pub setup_per_dpu: SimSeconds,
    /// Kernel launch + completion-poll overhead per `execute`, seconds.
    pub launch_overhead: SimSeconds,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            clock_hz: 350.0e6,
            pipeline_saturation: 11,
            dma_setup_cycles: 77,
            dma_cycles_per_byte: 0.53,
            muldiv_cycles: 32,
            xfer_per_dpu_bw: 0.33e9,
            xfer_aggregate_bw: 6.68e9,
            xfer_latency: 20.0e-6,
            setup_fixed: 60.0e-3,
            setup_per_dpu: 25.0e-6,
            launch_overhead: 50.0e-6,
        }
    }
}

impl CostModel {
    /// Cycles for one MRAM↔WRAM DMA of `bytes`.
    #[inline]
    pub fn dma_cycles(&self, bytes: u64) -> u64 {
        self.dma_setup_cycles + (bytes as f64 * self.dma_cycles_per_byte).ceil() as u64
    }

    /// Converts a cycle count to seconds.
    #[inline]
    pub fn cycles_to_seconds(&self, cycles: u64) -> SimSeconds {
        cycles as f64 / self.clock_hz
    }

    /// Cycles for one minimum-size (8-byte) MRAM probe — the unit cost
    /// of pointer-chasing reads such as binary-search probes, dominated
    /// by DMA setup. Kernels that choose between probing and streaming
    /// (the adaptive intersection in the count kernel) weigh this
    /// against [`CostModel::stream_word_cycles`].
    #[inline]
    pub fn mram_probe_cycles(&self) -> u64 {
        self.dma_cycles(8)
    }

    /// Amortized DMA cycles to stream one 8-byte word through a WRAM
    /// buffer of `buf_bytes`: the setup cost is shared across the whole
    /// buffer, so bigger buffers stream cheaper per word.
    #[inline]
    pub fn stream_word_cycles(&self, buf_bytes: u64) -> f64 {
        let words = (buf_bytes / 8).max(1);
        self.dma_cycles(buf_bytes) as f64 / words as f64
    }

    /// Wall cycles for a DPU whose tasklets individually executed
    /// `per_tasklet_instr` instructions (plus `dma_cycles` total DMA).
    ///
    /// The DPU is a single fine-grained-multithreaded pipeline: it retires
    /// at most one instruction per cycle *in total*, and each tasklet can
    /// have at most one instruction in flight, so a tasklet issues at most
    /// once every `pipeline_saturation` cycles. Hence
    /// `cycles ≥ Σ instr` (pipeline throughput bound) and
    /// `cycles ≥ saturation · max instr` (single-tasklet latency bound).
    /// DMA transfers are serialized on the bank's DMA engine and added on
    /// top (MRAM-bound kernels in PrIM show negligible overlap).
    pub fn dpu_cycles(&self, per_tasklet_instr: &[u64], dma_cycles: u64) -> u64 {
        let total: u64 = per_tasklet_instr.iter().sum();
        let max = per_tasklet_instr.iter().copied().max().unwrap_or(0);
        total.max(max * self.pipeline_saturation as u64) + dma_cycles
    }

    /// Seconds for a host↔DPU transfer batch where DPU `i` moves
    /// `per_dpu_bytes[i]` bytes, executed rank-parallel.
    ///
    /// Parallel transfers complete when the largest per-DPU payload drains
    /// at the per-DPU link rate, but the host cannot exceed the aggregate
    /// bandwidth across all DPUs; the batch takes the max of the two
    /// bounds plus a fixed latency.
    pub fn transfer_seconds(&self, per_dpu_bytes: &[u64]) -> SimSeconds {
        if per_dpu_bytes.is_empty() {
            return 0.0;
        }
        let total: u64 = per_dpu_bytes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let max = *per_dpu_bytes.iter().max().unwrap();
        let per_dpu_bound = max as f64 / self.xfer_per_dpu_bw;
        let aggregate_bound = total as f64 / self.xfer_aggregate_bw;
        self.xfer_latency + per_dpu_bound.max(aggregate_bound)
    }

    /// Seconds charged for allocating and preparing `nr_dpus` PIM cores.
    pub fn setup_seconds(&self, nr_dpus: usize) -> SimSeconds {
        self.setup_fixed + self.setup_per_dpu * nr_dpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_cost_has_setup_plus_streaming() {
        let m = CostModel::default();
        assert_eq!(m.dma_cycles(0), 77);
        let c1 = m.dma_cycles(8);
        let c2 = m.dma_cycles(2048);
        assert!(c2 > c1);
        // Streaming component ≈ 0.53 cycles/byte.
        assert!((c2 - 77) as f64 >= 2048.0 * 0.53);
    }

    #[test]
    fn pipeline_bound_uses_total_when_balanced() {
        let m = CostModel::default();
        // 16 balanced tasklets: throughput-bound → total instructions.
        let per = [1000u64; 16];
        assert_eq!(m.dpu_cycles(&per, 0), 16_000);
    }

    #[test]
    fn pipeline_bound_uses_latency_when_single_tasklet() {
        let m = CostModel::default();
        // One busy tasklet: each instruction waits a full pipeline round.
        let per = [1000u64, 0, 0, 0];
        assert_eq!(m.dpu_cycles(&per, 0), 11_000);
    }

    #[test]
    fn dma_adds_on_top() {
        let m = CostModel::default();
        assert_eq!(m.dpu_cycles(&[10, 10], 500), 110 + 500);
    }

    #[test]
    fn transfer_parallel_beats_sequential() {
        let m = CostModel::default();
        // 64 DPUs × 1 MB in parallel is far cheaper than 64 MB through one.
        let parallel = m.transfer_seconds(&vec![1 << 20; 64]);
        let single = m.transfer_seconds(&[64 << 20]);
        assert!(parallel < single / 10.0);
    }

    #[test]
    fn aggregate_bandwidth_caps_wide_transfers() {
        let m = CostModel::default();
        // 2560 DPUs × 4 MB = 10 GB total; the 6.68 GB/s cap dominates the
        // per-DPU bound (4 MB / 0.33 GB/s ≈ 12 ms < 10 GB / 6.68 GB/s).
        let t = m.transfer_seconds(&vec![4 << 20; 2560]);
        let total_bytes = 2560.0 * (4u64 << 20) as f64;
        assert!((t - m.xfer_latency - total_bytes / m.xfer_aggregate_bw).abs() < 1e-9);
    }

    #[test]
    fn empty_or_zero_transfers_are_free() {
        let m = CostModel::default();
        assert_eq!(m.transfer_seconds(&[]), 0.0);
        assert_eq!(m.transfer_seconds(&[0, 0]), 0.0);
    }

    #[test]
    fn setup_scales_with_dpus() {
        let m = CostModel::default();
        assert!(m.setup_seconds(2560) > m.setup_seconds(64));
        assert!((m.setup_seconds(0) - m.setup_fixed).abs() < 1e-12);
    }
}
