//! Per-DPU state: the MRAM bank and execution counters.

use crate::error::{SimError, SimResult};

/// One simulated PIM core and its private DRAM bank.
///
/// The host interacts with a DPU only through [`Dpu::host_write`] /
/// [`Dpu::host_read`] (the CPU-PIM transfer path) and by launching kernels
/// via [`crate::PimSystem::execute`]; there is no channel between DPUs,
/// matching the UPMEM architecture (§2.2 of the paper).
#[derive(Clone, Debug)]
pub struct Dpu {
    id: usize,
    mram: Vec<u8>,
    mram_capacity: u64,
    /// Instructions executed per tasklet during the current kernel.
    pub(crate) tasklet_instr: Vec<u64>,
    /// Total DMA cycles accumulated during the current kernel.
    pub(crate) dma_cycles: u64,
    /// DMA bytes moved during the current kernel.
    pub(crate) kernel_dma_bytes: u64,
    /// Lifetime counters for reporting.
    pub(crate) total_instr: u64,
    pub(crate) total_dma_bytes: u64,
}

impl Dpu {
    /// Creates a DPU with an empty MRAM bank of the given capacity.
    pub fn new(id: usize, mram_capacity: u64, nr_tasklets: usize) -> Self {
        Dpu {
            id,
            mram: Vec::new(),
            mram_capacity,
            tasklet_instr: vec![0; nr_tasklets],
            dma_cycles: 0,
            kernel_dma_bytes: 0,
            total_instr: 0,
            total_dma_bytes: 0,
        }
    }

    /// This DPU's id within the allocated set.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Bank capacity in bytes.
    #[inline]
    pub fn mram_capacity(&self) -> u64 {
        self.mram_capacity
    }

    /// Bytes of MRAM currently initialized (high-water mark).
    #[inline]
    pub fn mram_used(&self) -> u64 {
        self.mram.len() as u64
    }

    /// Ensures MRAM covers `[0, end)`, zero-filling new space; errors if
    /// that exceeds the bank capacity.
    pub(crate) fn ensure_mram(&mut self, end: u64) -> SimResult<()> {
        if end > self.mram_capacity {
            return Err(SimError::MramOverflow {
                dpu: self.id,
                requested: end - self.mram_capacity,
                capacity: self.mram_capacity,
            });
        }
        if end > self.mram.len() as u64 {
            self.mram.resize(end as usize, 0);
        }
        Ok(())
    }

    /// Checked immutable view of MRAM `[offset, offset + len)`.
    /// Zero-length views are always valid (and free).
    pub(crate) fn mram_slice(&self, offset: u64, len: u64) -> SimResult<&[u8]> {
        if len == 0 {
            return Ok(&[]);
        }
        let end = offset.checked_add(len).ok_or(SimError::BadAddress {
            dpu: self.id,
            offset,
            len,
        })?;
        if end > self.mram.len() as u64 {
            return Err(SimError::BadAddress {
                dpu: self.id,
                offset,
                len,
            });
        }
        Ok(&self.mram[offset as usize..end as usize])
    }

    /// Checked mutable view, growing the initialized region if within
    /// capacity.
    pub(crate) fn mram_slice_mut(&mut self, offset: u64, len: u64) -> SimResult<&mut [u8]> {
        let end = offset.checked_add(len).ok_or(SimError::BadAddress {
            dpu: self.id,
            offset,
            len,
        })?;
        self.ensure_mram(end)?;
        Ok(&mut self.mram[offset as usize..end as usize])
    }

    /// Host-side write into the bank (a CPU→PIM transfer; the *time* for it
    /// is charged by the system's transfer path, not here).
    pub fn host_write(&mut self, offset: u64, data: &[u8]) -> SimResult<()> {
        self.mram_slice_mut(offset, data.len() as u64)?
            .copy_from_slice(data);
        Ok(())
    }

    /// Host-side read from the bank (a PIM→CPU transfer).
    pub fn host_read(&self, offset: u64, len: u64) -> SimResult<Vec<u8>> {
        Ok(self.mram_slice(offset, len)?.to_vec())
    }

    /// Resets per-kernel counters (called by the system before a launch).
    pub(crate) fn reset_kernel_counters(&mut self) {
        self.tasklet_instr.iter_mut().for_each(|c| *c = 0);
        self.dma_cycles = 0;
        self.kernel_dma_bytes = 0;
    }

    /// Lifetime instruction count (all kernels).
    pub fn lifetime_instructions(&self) -> u64 {
        self.total_instr
    }

    /// Lifetime MRAM↔WRAM DMA traffic in bytes (all kernels).
    pub fn lifetime_dma_bytes(&self) -> u64 {
        self.total_dma_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut d = Dpu::new(0, 1024, 4);
        d.host_write(8, &[1, 2, 3, 4]).unwrap();
        assert_eq!(d.host_read(8, 4).unwrap(), vec![1, 2, 3, 4]);
        // Unwritten space inside the high-water mark reads as zero.
        assert_eq!(d.host_read(0, 8).unwrap(), vec![0; 8]);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut d = Dpu::new(7, 64, 4);
        assert!(d.host_write(0, &[0u8; 64]).is_ok());
        let err = d.host_write(1, &[0u8; 64]).unwrap_err();
        assert!(matches!(err, SimError::MramOverflow { dpu: 7, .. }));
    }

    #[test]
    fn reads_beyond_highwater_fail() {
        let mut d = Dpu::new(0, 1024, 4);
        d.host_write(0, &[9u8; 16]).unwrap();
        assert!(d.host_read(8, 16).is_err());
        assert!(matches!(
            d.host_read(2048, 1).unwrap_err(),
            SimError::BadAddress { .. }
        ));
    }

    #[test]
    fn offset_overflow_is_an_error_not_a_panic() {
        let d = Dpu::new(0, 1024, 4);
        assert!(d.host_read(u64::MAX - 1, 8).is_err());
    }
}
