//! The kernel-side programming model: [`DpuContext`] and [`Tasklet`].
//!
//! Kernels are Rust closures executed per DPU. Inside a kernel, all data
//! access must go through a [`Tasklet`], which enforces the two hardware
//! constraints that shape real DPU code:
//!
//! * **MRAM is not directly addressable.** Data must be staged through
//!   [`Tasklet::mram_read`] / [`Tasklet::mram_write`] DMA transfers, which
//!   are 8-byte aligned, split into ≤ 2048-byte bursts, and charged
//!   latency + per-byte cost.
//! * **WRAM is tiny.** Each tasklet claims buffers from its share of the
//!   64 KB scratchpad via [`Tasklet::alloc_wram`]; exceeding the budget is
//!   an error, exactly like overflowing the stack/heap of a real tasklet.
//!
//! Tasklets are *simulated sequentially* within a DPU (tasklet `i+1` runs
//! after tasklet `i` finishes), with per-tasklet cycle counters combined by
//! the pipeline model in [`crate::CostModel::dpu_cycles`]. Kernels written
//! for this API must therefore partition work so tasklets do not rely on
//! concurrent interleaving — the same discipline correct UPMEM kernels
//! need, since real tasklets interleave nondeterministically.

use crate::config::PimConfig;
use crate::dpu::Dpu;
use crate::error::{SimError, SimResult};

/// Maximum bytes a single MRAM↔WRAM DMA burst can move (UPMEM limit).
pub const MAX_DMA_BYTES: u64 = 2048;

/// Plain-old-data element types that can cross the MRAM↔WRAM boundary.
///
/// Implementations define the little-endian wire layout used inside the
/// simulated MRAM banks, so bank contents are platform-independent.
pub trait Pod: Copy + Default {
    /// Size of the encoded element in bytes.
    const BYTES: usize;
    /// Encodes `self` at `out[..Self::BYTES]`.
    fn write_le(self, out: &mut [u8]);
    /// Decodes an element from `inp[..Self::BYTES]`.
    fn read_le(inp: &[u8]) -> Self;
}

macro_rules! impl_pod_int {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_le(self, out: &mut [u8]) {
                out[..Self::BYTES].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(inp: &[u8]) -> Self {
                <$t>::from_le_bytes(inp[..Self::BYTES].try_into().unwrap())
            }
        }
    )*};
}

impl_pod_int!(u8, u16, u32, u64, i32, i64);

/// Kernel-side view of one DPU.
pub struct DpuContext<'a> {
    pub(crate) dpu: &'a mut Dpu,
    pub(crate) config: &'a PimConfig,
    pub(crate) cost: &'a crate::cost::CostModel,
}

impl<'a> DpuContext<'a> {
    /// Id of the DPU this kernel instance runs on.
    #[inline]
    pub fn dpu_id(&self) -> usize {
        self.dpu.id()
    }

    /// Number of tasklets launched per DPU.
    #[inline]
    pub fn nr_tasklets(&self) -> usize {
        self.config.nr_tasklets
    }

    /// Bytes of MRAM currently initialized on this DPU.
    #[inline]
    pub fn mram_used(&self) -> u64 {
        self.dpu.mram_used()
    }

    /// WRAM bytes each tasklet may claim (the even scratchpad split).
    #[inline]
    pub fn wram_per_tasklet(&self) -> usize {
        self.config.wram_per_tasklet()
    }

    /// Runs `body` once per tasklet, sequentially, each with a fresh WRAM
    /// budget of `config.wram_per_tasklet()`. Any tasklet error aborts the
    /// kernel.
    pub fn for_each_tasklet<F>(&mut self, mut body: F) -> SimResult<()>
    where
        F: FnMut(&mut Tasklet<'_>) -> SimResult<()>,
    {
        for id in 0..self.config.nr_tasklets {
            let mut t = self.tasklet(id)?;
            body(&mut t)?;
        }
        Ok(())
    }

    /// Borrows a single tasklet (used for single-threaded kernel sections,
    /// e.g. "tasklet 0 builds the index").
    pub fn tasklet(&mut self, id: usize) -> SimResult<Tasklet<'_>> {
        if id >= self.config.nr_tasklets {
            return Err(SimError::NoSuchDpu {
                dpu: id,
                allocated: self.config.nr_tasklets,
            });
        }
        Ok(Tasklet {
            dpu: self.dpu,
            id,
            wram_free: self.config.wram_per_tasklet(),
            cost: self.cost,
        })
    }
}

/// One simulated PIM thread. All MRAM traffic, WRAM allocation, and
/// instruction accounting for kernel work happens through this handle.
pub struct Tasklet<'a> {
    dpu: &'a mut Dpu,
    id: usize,
    wram_free: usize,
    cost: &'a crate::cost::CostModel,
}

impl<'a> Tasklet<'a> {
    /// This tasklet's id within the DPU.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The id of the DPU this tasklet runs on.
    #[inline]
    pub fn dpu_id(&self) -> usize {
        self.dpu.id()
    }

    /// Remaining WRAM budget in bytes.
    #[inline]
    pub fn wram_free(&self) -> usize {
        self.wram_free
    }

    /// The system's timing model. Kernels consult it to make the same
    /// cost-based choices hand-tuned DPU code bakes in as constants —
    /// e.g. the count kernel weighs [`crate::CostModel::mram_probe_cycles`]
    /// against [`crate::CostModel::stream_word_cycles`] when picking an
    /// intersection strategy per edge pair.
    #[inline]
    pub fn cost(&self) -> &crate::cost::CostModel {
        self.cost
    }

    /// Charges `n` single-cycle instructions (ALU ops, compares, branches,
    /// WRAM loads/stores) to this tasklet.
    #[inline]
    pub fn charge(&mut self, n: u64) {
        self.dpu.tasklet_instr[self.id] += n;
        self.dpu.total_instr += n;
    }

    /// Charges `n` 32-bit multiply/divide operations (multi-cycle on the
    /// DPU, which has no hardware 32-bit multiplier).
    #[inline]
    pub fn charge_muldiv(&mut self, n: u64) {
        // Expanded to the model's per-op cycle count by charging the
        // equivalent number of single-cycle slots.
        self.charge(n * self.cost.muldiv_cycles);
    }

    /// Claims a WRAM buffer of `len` elements of `T`, zero-initialized.
    ///
    /// The returned buffer is ordinary host memory; what's simulated is the
    /// *budget*: claims beyond this tasklet's scratchpad share fail with
    /// [`SimError::WramOverflow`], forcing kernels into the buffered
    /// streaming style real DPU code uses.
    pub fn alloc_wram<T: Pod>(&mut self, len: usize) -> SimResult<Vec<T>> {
        let bytes = len * T::BYTES;
        if bytes > self.wram_free {
            return Err(SimError::WramOverflow {
                dpu: self.dpu.id(),
                tasklet: self.id,
                requested: bytes,
                available: self.wram_free,
            });
        }
        self.wram_free -= bytes;
        Ok(vec![T::default(); len])
    }

    /// Returns a previously claimed buffer's bytes to the budget. (Real
    /// kernels reuse buffers; this exists for phased kernels that need
    /// different layouts in different phases.)
    pub fn free_wram<T: Pod>(&mut self, buf: Vec<T>) {
        self.wram_free += buf.len() * T::BYTES;
        drop(buf);
    }

    /// DMA: MRAM `[offset, offset + dst.len()·T::BYTES)` → WRAM `dst`.
    ///
    /// The offset must be 8-byte aligned (hardware rule); transfers larger
    /// than 2048 bytes are split into bursts, each charged setup latency.
    pub fn mram_read<T: Pod>(&mut self, offset: u64, dst: &mut [T]) -> SimResult<()> {
        let len = (dst.len() * T::BYTES) as u64;
        self.check_dma(offset, len)?;
        let src = self.dpu.mram_slice(offset, len)?;
        for (i, d) in dst.iter_mut().enumerate() {
            *d = T::read_le(&src[i * T::BYTES..]);
        }
        self.charge_dma(len);
        Ok(())
    }

    /// DMA: WRAM `src` → MRAM `[offset, offset + src.len()·T::BYTES)`.
    pub fn mram_write<T: Pod>(&mut self, offset: u64, src: &[T]) -> SimResult<()> {
        let len = (src.len() * T::BYTES) as u64;
        self.check_dma(offset, len)?;
        let dst = self.dpu.mram_slice_mut(offset, len)?;
        for (i, s) in src.iter().enumerate() {
            s.write_le(&mut dst[i * T::BYTES..]);
        }
        self.charge_dma(len);
        Ok(())
    }

    /// Reads a single element (convenience for index structures; charged
    /// as a minimum-size DMA, which is why kernels should batch instead —
    /// the cost model makes pointer-chasing expensive, as on real DPUs).
    pub fn mram_read_one<T: Pod>(&mut self, offset: u64) -> SimResult<T> {
        let mut buf = [T::default()];
        self.mram_read(offset, &mut buf)?;
        Ok(buf[0])
    }

    /// Writes a single element.
    pub fn mram_write_one<T: Pod>(&mut self, offset: u64, value: T) -> SimResult<()> {
        self.mram_write(offset, &[value])
    }

    #[inline]
    fn check_dma(&self, offset: u64, len: u64) -> SimResult<()> {
        if !offset.is_multiple_of(8) {
            return Err(SimError::BadDma {
                dpu: self.dpu.id(),
                len,
                rule: "MRAM DMA offset must be 8-byte aligned",
            });
        }
        Ok(())
    }

    #[inline]
    fn charge_dma(&mut self, bytes: u64) {
        // Round each burst to the 8-byte transfer granularity and charge
        // per ≤2048-byte burst.
        let mut remaining = bytes.div_ceil(8) * 8;
        loop {
            let burst = remaining.min(MAX_DMA_BYTES);
            self.dpu.dma_cycles += self.cost.dma_cycles(burst);
            self.dpu.kernel_dma_bytes += burst;
            self.dpu.total_dma_bytes += burst;
            if remaining <= MAX_DMA_BYTES {
                break;
            }
            remaining -= burst;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimConfig;

    fn ctx_fixture(config: &PimConfig) -> Dpu {
        Dpu::new(0, config.mram_capacity, config.nr_tasklets)
    }

    const COST: crate::cost::CostModel = crate::cost::CostModel {
        clock_hz: 350.0e6,
        pipeline_saturation: 11,
        dma_setup_cycles: 77,
        dma_cycles_per_byte: 0.53,
        muldiv_cycles: 32,
        xfer_per_dpu_bw: 0.33e9,
        xfer_aggregate_bw: 6.68e9,
        xfer_latency: 20.0e-6,
        setup_fixed: 60.0e-3,
        setup_per_dpu: 25.0e-6,
        launch_overhead: 50.0e-6,
    };

    #[test]
    fn dma_round_trip_typed() {
        let config = PimConfig::tiny();
        let mut dpu = ctx_fixture(&config);
        let mut ctx = DpuContext {
            dpu: &mut dpu,
            config: &config,
            cost: &COST,
        };
        let mut t = ctx.tasklet(0).unwrap();
        t.mram_write(0, &[1u32, 2, 3, 4]).unwrap();
        let mut back = [0u32; 4];
        t.mram_read(0, &mut back).unwrap();
        assert_eq!(back, [1, 2, 3, 4]);
    }

    #[test]
    fn unaligned_dma_is_rejected() {
        let config = PimConfig::tiny();
        let mut dpu = ctx_fixture(&config);
        let mut ctx = DpuContext {
            dpu: &mut dpu,
            config: &config,
            cost: &COST,
        };
        let mut t = ctx.tasklet(0).unwrap();
        let err = t.mram_write(4, &[1u32]).unwrap_err();
        assert!(matches!(err, SimError::BadDma { .. }));
    }

    #[test]
    fn wram_budget_is_enforced() {
        let config = PimConfig::tiny(); // 2 KB WRAM, 4 tasklets → 512 B each
        let mut dpu = ctx_fixture(&config);
        let mut ctx = DpuContext {
            dpu: &mut dpu,
            config: &config,
            cost: &COST,
        };
        let mut t = ctx.tasklet(0).unwrap();
        let buf: Vec<u32> = t.alloc_wram(64).unwrap(); // 256 B
        assert_eq!(t.wram_free(), 256);
        assert!(t.alloc_wram::<u32>(128).is_err()); // would need 512 B
        t.free_wram(buf);
        assert_eq!(t.wram_free(), 512);
    }

    #[test]
    fn charges_accumulate_per_tasklet() {
        let config = PimConfig::tiny();
        let mut dpu = ctx_fixture(&config);
        let mut ctx = DpuContext {
            dpu: &mut dpu,
            config: &config,
            cost: &COST,
        };
        ctx.for_each_tasklet(|t| {
            t.charge(10);
            Ok(())
        })
        .unwrap();
        assert_eq!(dpu.tasklet_instr, vec![10; 4]);
        assert_eq!(dpu.lifetime_instructions(), 40);
    }

    #[test]
    fn dma_charges_split_large_transfers() {
        let config = PimConfig::default();
        let mut dpu = ctx_fixture(&config);
        let mut ctx = DpuContext {
            dpu: &mut dpu,
            config: &config,
            cost: &COST,
        };
        let mut t = ctx.tasklet(0).unwrap();
        // 4096 bytes = two bursts → two setup charges.
        let data = vec![0u64; 512];
        t.mram_write(0, &data).unwrap();
        let model = crate::cost::CostModel::default();
        assert_eq!(dpu.dma_cycles, 2 * model.dma_cycles(2048));
    }

    #[test]
    fn out_of_range_tasklet_id_fails() {
        let config = PimConfig::tiny();
        let mut dpu = ctx_fixture(&config);
        let mut ctx = DpuContext {
            dpu: &mut dpu,
            config: &config,
            cost: &COST,
        };
        assert!(ctx.tasklet(99).is_err());
    }

    #[test]
    fn pod_round_trip_all_types() {
        fn rt<T: Pod + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = vec![0u8; T::BYTES];
            v.write_le(&mut buf);
            assert_eq!(T::read_le(&buf), v);
        }
        rt(0xABu8);
        rt(0xABCDu16);
        rt(0xDEADBEEFu32);
        rt(0xDEAD_BEEF_CAFE_F00Du64);
        rt(-123456i32);
        rt(-1234567890123i64);
    }
}
