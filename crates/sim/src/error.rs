//! Simulator error types.

use std::fmt;

/// Errors raised by the PIM simulator when code violates a hardware
/// constraint the real system would enforce (or crash on).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A write or allocation exceeded the DPU's MRAM bank capacity.
    MramOverflow {
        /// DPU that overflowed.
        dpu: usize,
        /// Bytes requested beyond the current end.
        requested: u64,
        /// Bank capacity in bytes.
        capacity: u64,
    },
    /// A WRAM allocation exceeded the scratchpad budget.
    WramOverflow {
        /// DPU raising the error.
        dpu: usize,
        /// Tasklet raising the error.
        tasklet: usize,
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// A DMA transfer referenced MRAM outside the initialized region.
    BadAddress {
        /// DPU raising the error.
        dpu: usize,
        /// Start offset of the access.
        offset: u64,
        /// Length of the access in bytes.
        len: u64,
    },
    /// A DMA transfer violated the engine's alignment/size rules
    /// (8-byte-aligned, at most 2048 bytes per transfer on UPMEM).
    BadDma {
        /// DPU raising the error.
        dpu: usize,
        /// Offending transfer size.
        len: u64,
        /// Human-readable rule that was violated.
        rule: &'static str,
    },
    /// The host addressed a DPU id outside the allocated set.
    NoSuchDpu {
        /// Offending id.
        dpu: usize,
        /// Number of allocated DPUs.
        allocated: usize,
    },
    /// System allocation was asked for more DPUs than the machine has.
    TooManyDpus {
        /// DPUs requested.
        requested: usize,
        /// DPUs available.
        available: usize,
    },
    /// The fault plan failed a transfer op transiently; nothing was applied.
    FaultTransfer {
        /// Operation index the fault fired at.
        op: u64,
    },
    /// The fault plan failed a kernel launch transiently; no tasklet ran.
    FaultLaunch {
        /// Operation index the fault fired at.
        op: u64,
    },
    /// The addressed DPU has died permanently under the fault plan.
    DpuDead {
        /// The dead DPU.
        dpu: usize,
    },
}

impl SimError {
    /// True for injected faults that a retry can clear (transfer/launch
    /// failures). Permanent deaths and programming errors are not transient.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::FaultTransfer { .. } | SimError::FaultLaunch { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MramOverflow { dpu, requested, capacity } => write!(
                f,
                "DPU {dpu}: MRAM overflow ({requested} bytes past a {capacity}-byte bank)"
            ),
            SimError::WramOverflow { dpu, tasklet, requested, available } => write!(
                f,
                "DPU {dpu} tasklet {tasklet}: WRAM overflow ({requested} requested, {available} free)"
            ),
            SimError::BadAddress { dpu, offset, len } => {
                write!(f, "DPU {dpu}: MRAM access [{offset}, +{len}) out of range")
            }
            SimError::BadDma { dpu, len, rule } => {
                write!(f, "DPU {dpu}: invalid DMA of {len} bytes ({rule})")
            }
            SimError::NoSuchDpu { dpu, allocated } => {
                write!(f, "DPU id {dpu} out of range (allocated {allocated})")
            }
            SimError::TooManyDpus { requested, available } => {
                write!(f, "requested {requested} DPUs, system has {available}")
            }
            SimError::FaultTransfer { op } => {
                write!(f, "injected transient transfer fault at op {op}")
            }
            SimError::FaultLaunch { op } => {
                write!(f, "injected transient kernel-launch fault at op {op}")
            }
            SimError::DpuDead { dpu } => {
                write!(f, "DPU {dpu} has died permanently (injected fault)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias used throughout the simulator.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::MramOverflow {
            dpu: 3,
            requested: 100,
            capacity: 64,
        };
        let s = e.to_string();
        assert!(s.contains("DPU 3") && s.contains("100") && s.contains("64"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = SimError::NoSuchDpu {
            dpu: 1,
            allocated: 0,
        };
        let b = SimError::NoSuchDpu {
            dpu: 1,
            allocated: 0,
        };
        assert_eq!(a, b);
    }
}
