//! System-wide activity reporting: per-DPU utilization and imbalance.
//!
//! The paper's load-balancing argument (§3.1) is about keeping PIM cores
//! evenly busy; this module surfaces the counters to check that claim on
//! any workload. The experiment harness logs these summaries next to the
//! timing results. When tracing is enabled, the report also attributes
//! cycles to individual kernel launches ([`LaunchProfile`]) and to the
//! §4.1 phases ([`PhaseKernelCycles`]).

use crate::backend::PimBackend;
use crate::fault::FaultCounters;
use crate::phase::Phase;
use crate::trace::TraceEvent;
use serde::{Deserialize, Serialize};

/// Number of buckets in each launch's cycle histogram.
pub const CYCLE_HISTOGRAM_BUCKETS: usize = 8;

/// Activity summary of one PIM core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpuActivity {
    /// DPU id.
    pub dpu: usize,
    /// Lifetime retired instructions.
    pub instructions: u64,
    /// Lifetime MRAM↔WRAM DMA bytes.
    pub dma_bytes: u64,
    /// MRAM bytes in use (high-water mark).
    pub mram_used: u64,
}

/// Per-launch cycle distribution across DPUs, derived from a traced
/// [`TraceEvent::Kernel`] event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LaunchProfile {
    /// Orchestrator-assigned launch label.
    pub label: String,
    /// Phase the launch billed to.
    pub phase: Phase,
    /// Modeled seconds (launch overhead + slowest DPU).
    pub seconds: f64,
    /// Wall cycles of the slowest DPU.
    pub max_cycles: u64,
    /// Mean wall cycles across DPUs.
    pub mean_cycles: f64,
    /// Median (nearest-rank p50) of per-DPU cycles.
    pub p50_cycles: u64,
    /// Nearest-rank p99 of per-DPU cycles.
    pub p99_cycles: u64,
    /// Max-over-mean cycle imbalance (1.0 = perfectly even).
    pub imbalance: f64,
    /// DPU counts in [`CYCLE_HISTOGRAM_BUCKETS`] equal-width buckets over
    /// `[0, max_cycles]` (the slowest DPU lands in the last bucket).
    pub cycle_histogram: Vec<usize>,
}

/// Kernel time attributed to one §4.1 phase.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseKernelCycles {
    /// The phase.
    pub phase: Phase,
    /// Kernel launches billed to this phase.
    pub launches: usize,
    /// Sum over launches of the slowest DPU's cycles.
    pub max_cycles: u64,
    /// Modeled seconds of those launches (overhead included).
    pub seconds: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice. Delegates to the
/// shared definition in `pim-metrics` so per-DPU histogram events on the
/// live metric stream reconcile bit-for-bit with this report's p50/p99.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    pim_metrics::nearest_rank_percentile(sorted, p)
}

impl LaunchProfile {
    /// Builds the distribution summary for one launch.
    pub fn from_launch(
        label: &str,
        phase: Phase,
        seconds: f64,
        per_dpu_cycles: &[u64],
    ) -> LaunchProfile {
        let max_cycles = per_dpu_cycles.iter().copied().max().unwrap_or(0);
        let mean_cycles = if per_dpu_cycles.is_empty() {
            0.0
        } else {
            per_dpu_cycles.iter().sum::<u64>() as f64 / per_dpu_cycles.len() as f64
        };
        let mut sorted = per_dpu_cycles.to_vec();
        sorted.sort_unstable();
        let mut cycle_histogram = vec![0usize; CYCLE_HISTOGRAM_BUCKETS];
        for &c in per_dpu_cycles {
            let bucket = if max_cycles == 0 {
                0
            } else {
                ((c as u128 * CYCLE_HISTOGRAM_BUCKETS as u128 / max_cycles as u128) as usize)
                    .min(CYCLE_HISTOGRAM_BUCKETS - 1)
            };
            cycle_histogram[bucket] += 1;
        }
        LaunchProfile {
            label: label.to_string(),
            phase,
            seconds,
            max_cycles,
            mean_cycles,
            p50_cycles: percentile(&sorted, 50.0),
            p99_cycles: percentile(&sorted, 99.0),
            imbalance: if mean_cycles > 0.0 {
                max_cycles as f64 / mean_cycles
            } else {
                1.0
            },
            cycle_histogram,
        }
    }
}

/// Aggregate activity report for the whole system.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Per-core activity, id order.
    pub per_dpu: Vec<DpuActivity>,
    /// Total instructions across cores.
    pub total_instructions: u64,
    /// Total DMA bytes across cores.
    pub total_dma_bytes: u64,
    /// Total CPU↔PIM transfer bytes.
    pub total_transfer_bytes: u64,
    /// Total modeled seconds spent on CPU↔PIM transfers.
    pub transfer_seconds: f64,
    /// Achieved transfer bandwidth over the cost model's aggregate cap
    /// (0.0 when nothing was transferred; ≤ 1.0 plus latency slack).
    pub transfer_bandwidth_utilization: f64,
    /// Max-over-mean instruction imbalance (1.0 = perfectly even).
    pub instruction_imbalance: f64,
    /// Per-launch cycle distributions (empty unless tracing was enabled).
    pub launches: Vec<LaunchProfile>,
    /// Kernel cycles per phase (empty unless tracing was enabled).
    pub phase_kernel_cycles: Vec<PhaseKernelCycles>,
    /// Faults injected by the system's [`crate::fault::FaultPlan`]
    /// (all-zero on fault-free runs).
    pub fault_counters: FaultCounters,
}

impl SystemReport {
    /// Builds the report from a backend's current counters. Launch-level
    /// attribution requires tracing ([`PimBackend::enable_tracing`]) on a
    /// backend that records events; without it only the lifetime
    /// aggregates are populated.
    pub fn capture<B: PimBackend>(sys: &B) -> SystemReport {
        let per_dpu: Vec<DpuActivity> = (0..sys.nr_dpus())
            .map(|id| match sys.dpu(id) {
                Ok(d) => DpuActivity {
                    dpu: id,
                    instructions: d.lifetime_instructions(),
                    dma_bytes: d.lifetime_dma_bytes(),
                    mram_used: d.mram_used(),
                },
                // A dead rank's cores are unreachable (`SimError::DpuDead`)
                // and their lifetime counters are gone with the hardware;
                // the report keeps a zeroed row so ids stay dense, the
                // same tombstone shape gather uses for dead ranks.
                Err(_) => DpuActivity {
                    dpu: id,
                    instructions: 0,
                    dma_bytes: 0,
                    mram_used: 0,
                },
            })
            .collect();
        let total_instructions: u64 = per_dpu.iter().map(|d| d.instructions).sum();
        let total_dma_bytes: u64 = per_dpu.iter().map(|d| d.dma_bytes).sum();
        let max = per_dpu.iter().map(|d| d.instructions).max().unwrap_or(0);
        let mean = if per_dpu.is_empty() {
            0.0
        } else {
            total_instructions as f64 / per_dpu.len() as f64
        };

        let launches: Vec<LaunchProfile> = sys
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Kernel {
                    label,
                    seconds,
                    phase,
                    per_dpu_cycles,
                    ..
                } => Some(LaunchProfile::from_launch(
                    label,
                    *phase,
                    *seconds,
                    per_dpu_cycles,
                )),
                _ => None,
            })
            .collect();

        let mut phase_kernel_cycles: Vec<PhaseKernelCycles> = Vec::new();
        for l in &launches {
            match phase_kernel_cycles.iter_mut().find(|p| p.phase == l.phase) {
                Some(p) => {
                    p.launches += 1;
                    p.max_cycles += l.max_cycles;
                    p.seconds += l.seconds;
                }
                None => phase_kernel_cycles.push(PhaseKernelCycles {
                    phase: l.phase,
                    launches: 1,
                    max_cycles: l.max_cycles,
                    seconds: l.seconds,
                }),
            }
        }

        let transfer_seconds = sys.total_transfer_seconds();
        let transfer_bandwidth_utilization = if transfer_seconds > 0.0 {
            (sys.total_transfer_bytes() as f64 / transfer_seconds) / sys.cost().xfer_aggregate_bw
        } else {
            0.0
        };

        SystemReport {
            total_instructions,
            total_dma_bytes,
            total_transfer_bytes: sys.total_transfer_bytes(),
            transfer_seconds,
            transfer_bandwidth_utilization,
            instruction_imbalance: if mean > 0.0 { max as f64 / mean } else { 1.0 },
            per_dpu,
            launches,
            phase_kernel_cycles,
            fault_counters: sys.fault_counters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, PimConfig, PimSystem};

    fn skewed_system() -> PimSystem {
        let mut sys = PimSystem::allocate(4, PimConfig::tiny(), CostModel::default()).unwrap();
        sys.enable_tracing();
        sys.set_phase(Phase::TriangleCount);
        sys.execute_labeled("skewed", |ctx| {
            let work = (ctx.dpu_id() as u64 + 1) * 100;
            let mut t = ctx.tasklet(0)?;
            t.charge(work);
            Ok(())
        })
        .unwrap();
        sys
    }

    #[test]
    fn captures_per_dpu_counters() {
        let sys = skewed_system();
        let report = SystemReport::capture(&sys);
        assert_eq!(report.per_dpu.len(), 4);
        assert_eq!(report.total_instructions, 100 + 200 + 300 + 400);
        // Max (400) over mean (250).
        assert!((report.instruction_imbalance - 1.6).abs() < 1e-12);
    }

    #[test]
    fn launch_profile_math_is_exact() {
        // Hand-computed: single tasklet charging (id+1)*100 instructions
        // saturates the 11-stage pipeline, so per-DPU cycles are
        // [1100, 2200, 3300, 4400].
        let sys = skewed_system();
        let report = SystemReport::capture(&sys);
        assert_eq!(report.launches.len(), 1);
        let l = &report.launches[0];
        assert_eq!(l.label, "skewed");
        assert_eq!(l.phase, Phase::TriangleCount);
        assert_eq!(l.max_cycles, 4400);
        assert!((l.mean_cycles - 2750.0).abs() < 1e-12);
        // Nearest-rank percentiles over [1100, 2200, 3300, 4400]:
        // p50 → rank ceil(0.50·4)=2 → 2200; p99 → rank ceil(0.99·4)=4 → 4400.
        assert_eq!(l.p50_cycles, 2200);
        assert_eq!(l.p99_cycles, 4400);
        assert!((l.imbalance - 1.6).abs() < 1e-12);
        // Buckets over [0, 4400]: 1100→2, 2200→4, 3300→6, 4400→7 (clamped).
        assert_eq!(l.cycle_histogram, vec![0, 0, 1, 0, 1, 0, 1, 1]);

        assert_eq!(report.phase_kernel_cycles.len(), 1);
        let p = &report.phase_kernel_cycles[0];
        assert_eq!(p.phase, Phase::TriangleCount);
        assert_eq!(p.launches, 1);
        assert_eq!(p.max_cycles, 4400);
        assert!((p.seconds - l.seconds).abs() < 1e-15);
    }

    #[test]
    fn transfer_utilization_is_bounded_and_zero_when_idle() {
        let sys = skewed_system();
        let report = SystemReport::capture(&sys);
        // No transfers yet → utilization is exactly 0, not NaN.
        assert_eq!(report.transfer_bandwidth_utilization, 0.0);

        let mut sys = skewed_system();
        sys.broadcast(0, &[0u8; 4096]).unwrap();
        let report = SystemReport::capture(&sys);
        assert!(report.transfer_seconds > 0.0);
        assert!(report.transfer_bandwidth_utilization > 0.0);
        // Fixed per-batch latency means achieved bandwidth stays below cap.
        assert!(report.transfer_bandwidth_utilization <= 1.0);
    }

    #[test]
    fn untraced_systems_report_no_launches() {
        let mut sys = PimSystem::allocate(2, PimConfig::tiny(), CostModel::default()).unwrap();
        sys.execute(|ctx| {
            let mut t = ctx.tasklet(0)?;
            t.charge(10);
            Ok(())
        })
        .unwrap();
        let report = SystemReport::capture(&sys);
        assert!(report.launches.is_empty());
        assert!(report.phase_kernel_cycles.is_empty());
        assert_eq!(report.total_instructions, 20);
    }

    #[test]
    fn nearest_rank_percentile_edge_cases() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50.0), 50);
        assert_eq!(percentile(&xs, 99.0), 99);
        assert_eq!(percentile(&xs, 100.0), 100);
    }

    #[test]
    fn functional_backend_reports_activity_without_time() {
        use crate::backend::FunctionalBackend;
        let mut sys = FunctionalBackend::allocate_default(2).unwrap();
        sys.enable_tracing();
        sys.execute(|ctx| {
            let mut t = ctx.tasklet(0)?;
            t.charge(10);
            Ok(())
        })
        .unwrap();
        let report = SystemReport::capture(&sys);
        // Data-derived counters are live; everything timed is absent.
        assert_eq!(report.total_instructions, 20);
        assert!(report.launches.is_empty());
        assert_eq!(report.transfer_seconds, 0.0);
        assert_eq!(report.transfer_bandwidth_utilization, 0.0);
    }

    #[test]
    fn empty_system_report_is_sane() {
        let sys = PimSystem::allocate(0, PimConfig::tiny(), CostModel::default()).unwrap();
        let report = SystemReport::capture(&sys);
        assert_eq!(report.total_instructions, 0);
        assert_eq!(report.instruction_imbalance, 1.0);
        assert_eq!(report.transfer_bandwidth_utilization, 0.0);
    }
}
