//! System-wide activity reporting: per-DPU utilization and imbalance.
//!
//! The paper's load-balancing argument (§3.1) is about keeping PIM cores
//! evenly busy; this module surfaces the counters to check that claim on
//! any workload. The experiment harness logs these summaries next to the
//! timing results.

use crate::dpu::Dpu;
use crate::system::PimSystem;
use serde::{Deserialize, Serialize};

/// Activity summary of one PIM core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpuActivity {
    /// DPU id.
    pub dpu: usize,
    /// Lifetime retired instructions.
    pub instructions: u64,
    /// Lifetime MRAM↔WRAM DMA bytes.
    pub dma_bytes: u64,
    /// MRAM bytes in use (high-water mark).
    pub mram_used: u64,
}

/// Aggregate activity report for the whole system.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Per-core activity, id order.
    pub per_dpu: Vec<DpuActivity>,
    /// Total instructions across cores.
    pub total_instructions: u64,
    /// Total DMA bytes across cores.
    pub total_dma_bytes: u64,
    /// Total CPU↔PIM transfer bytes.
    pub total_transfer_bytes: u64,
    /// Max-over-mean instruction imbalance (1.0 = perfectly even).
    pub instruction_imbalance: f64,
}

impl SystemReport {
    /// Builds the report from a system's current counters.
    pub fn capture(sys: &PimSystem) -> SystemReport {
        let per_dpu: Vec<DpuActivity> = (0..sys.nr_dpus())
            .map(|id| {
                let d: &Dpu = sys.dpu(id).expect("id in range");
                DpuActivity {
                    dpu: id,
                    instructions: d.lifetime_instructions(),
                    dma_bytes: d.lifetime_dma_bytes(),
                    mram_used: d.mram_used(),
                }
            })
            .collect();
        let total_instructions: u64 = per_dpu.iter().map(|d| d.instructions).sum();
        let total_dma_bytes: u64 = per_dpu.iter().map(|d| d.dma_bytes).sum();
        let max = per_dpu.iter().map(|d| d.instructions).max().unwrap_or(0);
        let mean = if per_dpu.is_empty() {
            0.0
        } else {
            total_instructions as f64 / per_dpu.len() as f64
        };
        SystemReport {
            total_instructions,
            total_dma_bytes,
            total_transfer_bytes: sys.total_transfer_bytes(),
            instruction_imbalance: if mean > 0.0 { max as f64 / mean } else { 1.0 },
            per_dpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, PimConfig, PimSystem};

    #[test]
    fn captures_per_dpu_counters() {
        let mut sys = PimSystem::allocate(4, PimConfig::tiny(), CostModel::default()).unwrap();
        sys.execute(|ctx| {
            let work = (ctx.dpu_id() as u64 + 1) * 100;
            let mut t = ctx.tasklet(0)?;
            t.charge(work);
            Ok(())
        })
        .unwrap();
        let report = SystemReport::capture(&sys);
        assert_eq!(report.per_dpu.len(), 4);
        assert_eq!(report.total_instructions, 100 + 200 + 300 + 400);
        // Max (400) over mean (250).
        assert!((report.instruction_imbalance - 1.6).abs() < 1e-12);
    }

    #[test]
    fn empty_system_report_is_sane() {
        let sys = PimSystem::allocate(0, PimConfig::tiny(), CostModel::default()).unwrap();
        let report = SystemReport::capture(&sys);
        assert_eq!(report.total_instructions, 0);
        assert_eq!(report.instruction_imbalance, 1.0);
    }
}
